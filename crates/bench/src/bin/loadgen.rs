//! `loadgen` — drives the grading daemon over real TCP and measures it.
//!
//! ```text
//! cargo run --release -p afg-bench --bin loadgen -- \
//!     [--problem ID] [--attempts N] [--requests N] [--connections N] \
//!     [--seed S] [--addr HOST:PORT] [--no-cache] [--backend cegis|enum|portfolio]
//! ```
//!
//! The driver generates a seeded submission corpus for one benchmark
//! problem, builds a **Zipf-skewed** request schedule over it (real
//! classroom traffic is dominated by a few canonical solutions and
//! canonical mistakes), and replays that schedule against the daemon from
//! `--connections` concurrent keep-alive TCP connections — twice: once
//! against a cache-enabled registration and once against a `--no-cache`
//! one — reporting throughput, p50/p99 latency and the speedup.
//!
//! Every response is checked against a serial, library-path grading of the
//! same submission with the same budget: the run fails (exit 1) unless all
//! responses are **byte-identical** to the library feedback.
//!
//! Without `--addr` the daemon is booted in-process on an ephemeral port —
//! the traffic still crosses real TCP sockets.  With `--addr` an external
//! daemon is driven instead (it must allow registration).

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use afg_bench::zipf_schedule;
use afg_core::{Autograder, Backend, FeedbackLevel, GradeOutcome, GraderConfig, SweepMode};
use afg_corpus::{generate_corpus, problems, CorpusSpec};
use afg_json::Json;
use afg_service::client::Client;
use afg_service::{IoMode, ServerHandle, ServiceConfig};

struct Options {
    problem: String,
    attempts: usize,
    requests: usize,
    connections: usize,
    seed: u64,
    addr: Option<String>,
    no_cache: bool,
    backend: Backend,
    sweep: SweepMode,
    classroom: bool,
    students: usize,
    skeletons: usize,
    no_transfer: bool,
    workers: usize,
    io: IoMode,
    idle_frac: Option<f64>,
}

fn usage() -> String {
    "usage: loadgen [--problem ID] [--attempts N] [--requests N] [--connections N]\n\
     \x20              [--seed S] [--addr HOST:PORT] [--no-cache]\n\
     \x20              [--backend cegis|enum|portfolio] [--sweep compiled|tree]\n\
     \x20              [--classroom] [--students N] [--skeletons K]\n\
     \x20              [--no-transfer] [--workers N]\n\
     \n\
     --problem ID      benchmark problem to grade (default compDeriv)\n\
     --attempts N      distinct submissions in the corpus (default 48)\n\
     --requests N      total grade requests per run (default 400)\n\
     --connections N   concurrent keep-alive TCP connections (default 8)\n\
     --seed S          corpus + schedule RNG seed (default 20130616)\n\
     --addr HOST:PORT  drive an external daemon instead of booting one\n\
     --no-cache        only run the cache-disabled mode\n\
     --backend B       synthesis back end on both daemon and library path\n\
     --sweep M         verification sweeps: compiled bytecode VM (default)\n\
     \x20               or the tree-walking interpreter\n\
     --io MODE         I/O core for the in-process daemon: epoll or threads\n\
     \x20               (default: the platform default, epoll on Linux)\n\
     \n\
     high-concurrency mode (JSON on stdout):\n\
     --idle-frac F     hold --connections keep-alive sockets but drive grade\n\
     \x20               traffic from only (1-F) of them; warms the cache\n\
     \x20               first so the measured phase exercises the I/O core,\n\
     \x20               then reports p50/p99, errors and the daemon's own\n\
     \x20               open-connection gauge as JSON\n\
     \n\
     classroom mode (library-path cohort study, JSON on stdout):\n\
     --classroom       grade a seeded mutant cohort of N students over K\n\
     \x20               skeletons, cold AND warm (cluster repair transfer),\n\
     \x20               and emit cold-vs-warm SAT conflicts + wall clock\n\
     --students N      cohort size (default 64)\n\
     --skeletons K     distinct buggy skeletons (default 8)\n\
     --no-transfer     cold pass only (the baseline the warm pass beats)\n\
     --workers N       grading worker threads (default 1: deterministic\n\
     \x20               arrival order maximises transfer opportunities)"
        .to_string()
}

fn parse_options() -> Options {
    let mut options = Options {
        problem: "compDeriv".to_string(),
        attempts: 48,
        requests: 400,
        connections: 8,
        seed: 20130616,
        addr: None,
        no_cache: false,
        backend: Backend::Cegis,
        sweep: SweepMode::default(),
        classroom: false,
        students: 64,
        skeletons: 8,
        no_transfer: false,
        workers: 1,
        io: IoMode::default(),
        idle_frac: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    let exit_usage = |message: &str| -> ! {
        eprintln!("{message}\n\n{}", usage());
        std::process::exit(2)
    };
    let number = |flag: &str, value: Option<&String>| -> u64 {
        match value.and_then(|v| v.parse().ok()) {
            Some(n) => n,
            None => exit_usage(&format!("option '{flag}' expects a non-negative integer")),
        }
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--problem" => match iter.next() {
                Some(id) => options.problem = id.clone(),
                None => exit_usage("option '--problem' requires a value"),
            },
            "--attempts" => options.attempts = number(arg, iter.next()).max(1) as usize,
            "--requests" => options.requests = number(arg, iter.next()).max(1) as usize,
            "--connections" => options.connections = number(arg, iter.next()).max(1) as usize,
            "--seed" => options.seed = number(arg, iter.next()),
            "--addr" => match iter.next() {
                Some(addr) => options.addr = Some(addr.clone()),
                None => exit_usage("option '--addr' requires a value"),
            },
            "--no-cache" => options.no_cache = true,
            "--classroom" => options.classroom = true,
            "--students" => options.students = number(arg, iter.next()).max(1) as usize,
            "--skeletons" => options.skeletons = number(arg, iter.next()).max(1) as usize,
            "--no-transfer" => options.no_transfer = true,
            "--workers" => options.workers = number(arg, iter.next()).max(1) as usize,
            "--backend" => match iter.next().and_then(|v| Backend::parse(v)) {
                Some(backend) => options.backend = backend,
                None => exit_usage("option '--backend' expects cegis, enum or portfolio"),
            },
            "--sweep" => match iter.next().and_then(|v| SweepMode::parse(v)) {
                Some(sweep) => options.sweep = sweep,
                None => exit_usage("option '--sweep' expects compiled or tree"),
            },
            "--io" => match iter.next().and_then(|v| IoMode::parse(v)) {
                Some(io) => options.io = io,
                None => exit_usage("option '--io' expects epoll or threads"),
            },
            "--idle-frac" => match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(frac) if (0.0..1.0).contains(&frac) => options.idle_frac = Some(frac),
                _ => exit_usage("option '--idle-frac' expects a fraction in [0, 1)"),
            },
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => exit_usage(&format!("unknown option '{other}'")),
        }
    }
    options
}

/// The deterministic (candidate-bounded) search budget used on both the
/// library path and the daemon registrations, so byte-identity holds
/// regardless of machine load.  Small enough that the worst pathological
/// submission grades in a couple of seconds on one core — loadgen measures
/// the *service*, not the synthesizer's deep tail.
fn budget(backend: Backend, sweep: SweepMode) -> GraderConfig {
    let mut config = GraderConfig {
        synthesis: afg_synth::SynthesisConfig {
            max_cost: 2,
            max_candidates: 300,
            time_budget: Duration::from_secs(600),
        },
        backend,
        ..GraderConfig::fast()
    };
    config.equivalence.sweep = sweep;
    config
}

/// What the library path says a submission grades to: the `"outcome"` tag
/// and, for feedback, the fully rendered text plus the repair cost.
type Expected = (String, Option<String>, Option<usize>);

fn expected_of(grader: &Autograder, source: &str) -> Expected {
    match grader.grade_source(source) {
        GradeOutcome::SyntaxError(_) => ("syntax_error".into(), None, None),
        GradeOutcome::Correct => ("correct".into(), None, None),
        GradeOutcome::Feedback(feedback) => (
            "feedback".into(),
            Some(feedback.render(FeedbackLevel::full())),
            Some(feedback.cost),
        ),
        GradeOutcome::CannotFix => ("cannot_fix".into(), None, None),
        GradeOutcome::Timeout => ("timeout".into(), None, None),
    }
}

struct RunResult {
    wall: Duration,
    /// Request latencies at microsecond resolution — the same log-linear
    /// histogram the daemon's own `/metrics` latency series uses, so the
    /// p50/p99 here and a scraped `afg_grade_seconds` agree on bucketing.
    latencies: afg_obs::Histogram,
    mismatches: usize,
}

/// Replays `schedule` (indices into `sources`) against one registered
/// problem from `connections` concurrent keep-alive connections.
fn run_phase(
    addr: SocketAddr,
    problem_id: &str,
    sources: &[String],
    expected: &HashMap<&str, Expected>,
    schedule: &[usize],
    connections: usize,
    strict: bool,
) -> RunResult {
    let path = format!("/problems/{problem_id}/grade");
    let next = AtomicUsize::new(0);
    let mismatched = AtomicUsize::new(0);
    // Recording is lock-free, so every connection thread shares one
    // histogram directly — no per-thread Vec + merge step.
    let latencies = afg_obs::Histogram::new(1e-6);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..connections {
            scope.spawn(|| {
                let mut client = Client::connect(addr).expect("connect to daemon");
                loop {
                    let slot = next.fetch_add(1, Ordering::Relaxed);
                    if slot >= schedule.len() {
                        break;
                    }
                    let source = sources[schedule[slot]].as_str();
                    let body = Json::object([("source", Json::str(source))]);
                    let sent = Instant::now();
                    let (status, response) = client.post(&path, &body).expect("grade request");
                    latencies.record_duration(sent.elapsed());
                    if status != 200 || !matches_expected(&response, &expected[source], strict) {
                        mismatched.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let wall = start.elapsed();
    RunResult {
        wall,
        latencies,
        mismatches: mismatched.into_inner(),
    }
}

/// `strict` compares rendered feedback byte for byte (deterministic
/// backends); otherwise only the outcome tag and repair cost must agree —
/// the portfolio's race winner varies between runs, and different winners
/// may legitimately pick different (equally minimal) repairs.
fn matches_expected(response: &Json, expected: &Expected, strict: bool) -> bool {
    if response.get("outcome").and_then(Json::as_str) != Some(expected.0.as_str()) {
        return false;
    }
    if strict {
        let rendered = response
            .get("feedback")
            .and_then(|f| f.get("rendered"))
            .and_then(Json::as_str);
        rendered == expected.1.as_deref()
    } else {
        let cost = response
            .get("feedback")
            .and_then(|f| f.get("cost"))
            .and_then(Json::as_i64)
            .and_then(|v| usize::try_from(v).ok());
        cost == expected.2
    }
}

fn report(label: &str, result: &RunResult, requests: usize) -> f64 {
    let throughput = requests as f64 / result.wall.as_secs_f64();
    println!(
        "{label:<9} {requests:>6} requests in {:>7.2}s  {throughput:>8.1} req/s  \
         p50 {:>7.2}ms  p99 {:>7.2}ms  mismatches {}",
        result.wall.as_secs_f64(),
        result.latencies.quantile(0.50) as f64 / 1e3,
        result.latencies.quantile(0.99) as f64 / 1e3,
        result.mismatches,
    );
    throughput
}

/// `--classroom`: grade one seeded cohort cold (no cluster index) and —
/// unless `--no-transfer` — warm (skeleton-cluster repair transfer), then
/// emit a JSON comparison on stdout.  Exits 1 if any warm verdict differs
/// from its cold counterpart: transfer must change the work, never the
/// grade.
fn run_classroom_mode(options: &Options, problem: &afg_corpus::Problem) -> ! {
    use afg_bench::classroom::{classroom_cohort, classroom_json, run_classroom, ClassroomSpec};

    let spec = ClassroomSpec {
        students: options.students,
        skeletons: options.skeletons,
        seed: options.seed,
    };
    let cohort = classroom_cohort(problem, &spec);
    let grader = problem.autograder(budget(options.backend, options.sweep));

    eprintln!(
        "classroom: problem {} — {} students over {} skeletons, seed {}, {} workers",
        problem.id, spec.students, spec.skeletons, spec.seed, options.workers
    );
    eprintln!("cold pass (cache only, no repair transfer)...");
    let cold = run_classroom(&grader, &cohort, options.workers, false);
    let warm = if options.no_transfer {
        None
    } else {
        eprintln!("warm pass (cache + skeleton-cluster repair transfer)...");
        Some(run_classroom(&grader, &cohort, options.workers, true))
    };

    if let Some(warm) = &warm {
        let cluster = warm.cluster.as_ref().expect("warm pass tracks clusters");
        eprintln!(
            "cold: {} SAT conflicts, {} candidates, {:.2}s wall",
            cold.sat_conflicts,
            cold.candidates_checked,
            cold.wall.as_secs_f64()
        );
        eprintln!(
            "warm: {} SAT conflicts, {} candidates, {:.2}s wall — {} clusters \
             (largest {}), {}/{} transfers verified, ~{} conflicts saved",
            warm.sat_conflicts,
            warm.candidates_checked,
            warm.wall.as_secs_f64(),
            cluster.clusters,
            cluster.largest,
            warm.totals.transfer_hits,
            warm.totals.transfer_attempts,
            cluster.conflicts_saved,
        );
    }
    println!("{}", classroom_json(problem, &spec, &cold, warm.as_ref()));

    if let Some(warm) = &warm {
        if warm.verdicts != cold.verdicts {
            eprintln!("FAILED: warm verdicts diverged from the cold baseline");
            std::process::exit(1);
        }
    }
    std::process::exit(0)
}

/// Resolves `--addr`, or boots an in-process daemon honoring `--io`.
/// `threads_hint` sizes the worker pool for the thread-per-connection
/// core; the epoll core keeps its default CPU-worker count, since its
/// thread count is independent of connections.
fn daemon_for(options: &Options, threads_hint: usize) -> (SocketAddr, Option<ServerHandle>) {
    match &options.addr {
        Some(addr) => {
            use std::net::ToSocketAddrs;
            match addr.to_socket_addrs().ok().and_then(|mut it| it.next()) {
                Some(resolved) => (resolved, None),
                None => {
                    eprintln!("bad --addr '{addr}' (expected HOST:PORT)");
                    std::process::exit(2);
                }
            }
        }
        None => {
            let threads = match options.io {
                IoMode::Threads => threads_hint,
                IoMode::Epoll => ServiceConfig::default().threads,
            };
            let handle = afg_service::start(ServiceConfig {
                io: options.io,
                threads,
                // Idle sockets are the point of the high-concurrency mode;
                // they must not be reaped mid-measurement.
                keep_alive_timeout: Duration::from_secs(120),
                ..ServiceConfig::default()
            })
            .expect("boot the daemon");
            let addr = handle.addr();
            (addr, Some(handle))
        }
    }
}

/// The daemon's own `afg_open_connections` gauge, scraped from
/// `/metrics` Prometheus text.
fn scrape_open_connections(addr: SocketAddr) -> i64 {
    let text = Client::connect(addr)
        .and_then(|mut client| client.get_text("/metrics"))
        .map(|(_, text)| text)
        .unwrap_or_default();
    text.lines()
        .find_map(|line| line.strip_prefix("afg_open_connections "))
        .and_then(|value| value.trim().parse::<f64>().ok())
        .map(|value| value as i64)
        .unwrap_or(-1)
}

/// `--idle-frac`: hold `--connections` keep-alive sockets, drive grade
/// traffic from only the active fraction, report latency quantiles plus
/// the daemon's open-connection gauge as JSON.  The cache is warmed over
/// every distinct submission first, so the measured phase exercises the
/// I/O core (many sockets, cache-hit grades) rather than CEGIS queueing.
fn run_concurrency_mode(options: &Options, problem: &afg_corpus::Problem) -> ! {
    let idle_frac = options
        .idle_frac
        .expect("concurrency mode requires --idle-frac");
    let connections = options.connections;
    let active = ((connections as f64 * (1.0 - idle_frac)).round() as usize).clamp(1, connections);
    let idle = connections - active;

    let spec = CorpusSpec::table1_like(options.attempts, options.seed);
    let corpus = generate_corpus(problem, &spec);
    let sources: Vec<String> = corpus.into_iter().map(|s| s.source).collect();
    let schedule = zipf_schedule(sources.len(), options.requests, options.seed ^ 0x5ca1e);

    let (addr, booted) = daemon_for(options, connections.max(4));

    let problem_id = format!("{}-conc", problem.id);
    let body = Json::object([
        ("problem", Json::str(problem.id)),
        ("id", Json::str(&problem_id)),
        ("cache", Json::Bool(true)),
        ("backend", Json::str(options.backend.name())),
        ("sweep", Json::str(options.sweep.name())),
        ("max_cost", Json::Int(2)),
        ("max_candidates", Json::Int(300)),
        ("time_budget_ms", Json::Int(600_000)),
    ]);
    let (status, response) =
        afg_service::client::post(addr, "/problems", &body).expect("register problem");
    assert_eq!(status, 201, "registration failed: {response}");

    // Warmup: one serial pass over every submission the schedule reaches.
    let path = format!("/problems/{problem_id}/grade");
    let distinct: std::collections::BTreeSet<usize> = schedule.iter().copied().collect();
    eprintln!(
        "warmup: grading {} distinct submissions once (cache fill)...",
        distinct.len()
    );
    {
        let mut client = Client::connect(addr).expect("connect for warmup");
        for &index in &distinct {
            let body = Json::object([("source", Json::str(sources[index].as_str()))]);
            let (status, _) = client.post(&path, &body).expect("warmup grade");
            assert_eq!(status, 200, "warmup grade failed");
        }
    }

    eprintln!(
        "holding {connections} connections ({idle} idle, {active} active), \
         {} requests, io={}...",
        schedule.len(),
        options.io.name()
    );
    let mut idle_conns = Vec::with_capacity(idle);
    for _ in 0..idle {
        idle_conns.push(Client::connect(addr).expect("open idle connection"));
    }

    let next = AtomicUsize::new(0);
    let errors = AtomicUsize::new(0);
    let latencies = afg_obs::Histogram::new(1e-6);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..active {
            scope.spawn(|| {
                let mut client = match Client::connect(addr) {
                    Ok(client) => client,
                    Err(_) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                };
                loop {
                    let slot = next.fetch_add(1, Ordering::Relaxed);
                    if slot >= schedule.len() {
                        break;
                    }
                    let body =
                        Json::object([("source", Json::str(sources[schedule[slot]].as_str()))]);
                    let sent = Instant::now();
                    match client.post(&path, &body) {
                        Ok((200, _)) => latencies.record_duration(sent.elapsed()),
                        Ok(_) | Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let wall = start.elapsed();

    // Scrape while the idle sockets are still held open, so the gauge
    // reflects the concurrency actually sustained.
    let open_connections = scrape_open_connections(addr);
    drop(idle_conns);

    let errors = errors.into_inner();
    let summary = Json::object([
        ("mode", Json::str("concurrency")),
        ("io", Json::str(options.io.name())),
        ("problem", Json::str(problem.id)),
        ("connections", Json::Int(connections as i64)),
        ("idle", Json::Int(idle as i64)),
        ("active", Json::Int(active as i64)),
        ("requests", Json::Int(schedule.len() as i64)),
        ("wall_s", Json::Float(wall.as_secs_f64())),
        (
            "throughput_rps",
            Json::Float(schedule.len() as f64 / wall.as_secs_f64()),
        ),
        ("p50_ms", Json::Float(latencies.quantile(0.50) as f64 / 1e3)),
        ("p99_ms", Json::Float(latencies.quantile(0.99) as f64 / 1e3)),
        ("errors", Json::Int(errors as i64)),
        ("open_connections", Json::Int(open_connections)),
    ]);
    println!("{summary}");

    if let Some(handle) = booted {
        handle.shutdown();
    }
    std::process::exit(if errors > 0 { 1 } else { 0 })
}

fn main() {
    let options = parse_options();
    let Some(problem) = problems::problem(&options.problem) else {
        eprintln!("unknown problem '{}'", options.problem);
        std::process::exit(2);
    };

    if options.classroom {
        run_classroom_mode(&options, &problem);
    }
    if options.idle_frac.is_some() {
        run_concurrency_mode(&options, &problem);
    }

    // Seeded corpus and Zipf-skewed schedule over it.
    let spec = CorpusSpec::table1_like(options.attempts, options.seed);
    let corpus = generate_corpus(&problem, &spec);
    let sources: Vec<String> = corpus.into_iter().map(|s| s.source).collect();
    let schedule = zipf_schedule(sources.len(), options.requests, options.seed ^ 0x5ca1e);
    let distinct_graded: std::collections::HashSet<usize> = schedule.iter().copied().collect();

    // Library-path ground truth, graded serially with the same budget.
    let grader = problem.autograder(budget(options.backend, options.sweep));
    println!(
        "loadgen: problem {} — {} distinct submissions ({} reached by the schedule), \
         {} requests, {} connections, seed {}",
        problem.id,
        sources.len(),
        distinct_graded.len(),
        options.requests,
        options.connections,
        options.seed
    );
    println!("grading the corpus once through the library path (ground truth)...");
    let strict = options.backend != Backend::Portfolio;
    let expected: HashMap<&str, Expected> = sources
        .iter()
        .map(|source| (source.as_str(), expected_of(&grader, source)))
        .collect();

    // A daemon to drive: external via --addr, or booted in-process (under
    // the thread-per-connection core the worker pool must at least match
    // the connection count, since each worker owns one keep-alive
    // connection at a time).
    let (addr, booted) = daemon_for(&options, options.connections.max(4));

    // Register the problem twice: with and without the fingerprint cache.
    // Admin calls use one-shot connections — a held keep-alive connection
    // would idle out server-side during a long measurement phase.
    let register = |id: &str, cache: bool| {
        let body = Json::object([
            ("problem", Json::str(problem.id)),
            ("id", Json::str(id)),
            ("cache", Json::Bool(cache)),
            ("backend", Json::str(options.backend.name())),
            ("sweep", Json::str(options.sweep.name())),
            ("max_cost", Json::Int(2)),
            ("max_candidates", Json::Int(300)),
            ("time_budget_ms", Json::Int(600_000)),
        ]);
        let (status, response) =
            afg_service::client::post(addr, "/problems", &body).expect("register problem");
        assert_eq!(status, 201, "registration failed: {response}");
    };

    let nocache_id = format!("{}-nocache", problem.id);
    register(&nocache_id, false);
    let uncached = run_phase(
        addr,
        &nocache_id,
        &sources,
        &expected,
        &schedule,
        options.connections,
        strict,
    );
    println!();
    let uncached_throughput = report("no-cache", &uncached, options.requests);

    if !options.no_cache {
        let cached_id = format!("{}-cached", problem.id);
        register(&cached_id, true);
        let cached = run_phase(
            addr,
            &cached_id,
            &sources,
            &expected,
            &schedule,
            options.connections,
            strict,
        );
        let cached_throughput = report("cached", &cached, options.requests);
        let speedup = cached_throughput / uncached_throughput;

        // Surface the daemon's own cache counters.
        let (_, stats) = afg_service::client::get(addr, "/stats").expect("stats");
        if let Some(problems) = stats.get("problems").and_then(Json::as_array) {
            for entry in problems {
                if entry.get("id").and_then(Json::as_str) == Some(cached_id.as_str()) {
                    if let Some(cache) = entry.get("cache").filter(|c| !c.is_null()) {
                        println!(
                            "cache: {} hits, {} misses ({:.0}% hit rate), {} entries",
                            cache.get("hits").and_then(Json::as_i64).unwrap_or(0),
                            cache.get("misses").and_then(Json::as_i64).unwrap_or(0),
                            cache.get("hit_rate").and_then(Json::as_f64).unwrap_or(0.0) * 100.0,
                            cache.get("entries").and_then(Json::as_i64).unwrap_or(0),
                        );
                    }
                }
            }
        }
        if cached.mismatches == 0 && uncached.mismatches == 0 {
            if strict {
                println!(
                    "feedback byte-identical to serial library grading across all {} responses",
                    2 * options.requests
                );
            } else {
                println!(
                    "outcome and repair cost match serial library grading across all {} responses",
                    2 * options.requests
                );
            }
        }
        let total_mismatches = cached.mismatches + uncached.mismatches;
        println!("speedup: cache-enabled throughput is {speedup:.2}x the --no-cache run");
        if total_mismatches > 0 {
            eprintln!("FAILED: {total_mismatches} responses diverged from the library path");
            std::process::exit(1);
        }
    } else if uncached.mismatches > 0 {
        eprintln!(
            "FAILED: {} responses diverged from the library path",
            uncached.mismatches
        );
        std::process::exit(1);
    }

    if let Some(handle) = booted {
        handle.shutdown();
    }
}
