//! Prometheus text exposition (the classic `text/plain; version=0.0.4`
//! format): `# HELP`/`# TYPE` headers, cumulative `_bucket{le=...}`
//! series, `_sum`/`_count`, escaped label values.

use std::fmt::Write;

use crate::metrics::{Metric, MetricEntry, Registry};

/// The Content-Type a `/metrics` endpoint should serve.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Escapes a label *value*: backslash, double quote and newline.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes HELP text: backslash and newline only (quotes are legal).
fn escape_help(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders a label set, optionally with an extra `le` pair appended.
fn label_block(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

/// Recognizes `scale` as `10^-k` (the only scales the stack uses:
/// 1, 1e-3, 1e-6, 1e-9), enabling exact decimal formatting.
fn pow10_exp(scale: f64) -> Option<u32> {
    let mut p = 1.0f64;
    for k in 0..=12 {
        if (scale - p).abs() < p * 1e-9 {
            return Some(k);
        }
        p /= 10.0;
    }
    None
}

/// Formats `raw * scale` the way Prometheus expects: a plain decimal,
/// no exponent, no float noise, no trailing zeros.
fn format_scaled(raw: u64, scale: f64) -> String {
    match pow10_exp(scale) {
        Some(0) => raw.to_string(),
        Some(k) => {
            let div = 10u64.pow(k);
            let (whole, frac) = (raw / div, raw % div);
            if frac == 0 {
                return whole.to_string();
            }
            let mut s = format!("{whole}.{frac:0width$}", width = k as usize);
            while s.ends_with('0') {
                s.pop();
            }
            s
        }
        // f64 shortest round-trip; always parseable by a scraper.
        None => format!("{}", raw as f64 * scale),
    }
}

impl Registry {
    /// Renders every registered metric in the Prometheus text format.
    /// Deterministic: metrics sort by name then label set, and only
    /// non-empty histogram buckets (plus `+Inf`) are emitted, so a
    /// scrape stays small even with ~1000-bucket log-linear histograms.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_header: Option<String> = None;
        for entry in self.entries() {
            render_entry(&mut out, &entry, &mut last_header);
        }
        out
    }
}

fn render_entry(out: &mut String, entry: &MetricEntry, last_header: &mut Option<String>) {
    let name = &entry.key.name;
    let kind = match &entry.metric {
        Metric::Counter(_) => "counter",
        Metric::Gauge(_) => "gauge",
        Metric::Histogram(_) => "histogram",
    };
    // One HELP/TYPE header per metric name, shared by all label sets.
    if last_header.as_deref() != Some(name.as_str()) {
        let _ = writeln!(out, "# HELP {name} {}", escape_help(entry.help));
        let _ = writeln!(out, "# TYPE {name} {kind}");
        *last_header = Some(name.clone());
    }
    let labels = &entry.key.labels;
    match &entry.metric {
        Metric::Counter(c) => {
            let _ = writeln!(out, "{name}{} {}", label_block(labels, None), c.get());
        }
        Metric::Gauge(g) => {
            let _ = writeln!(out, "{name}{} {}", label_block(labels, None), g.get());
        }
        Metric::Histogram(h) => {
            let scale = h.scale();
            let mut cum = 0;
            for (bound, cumulative) in h.cumulative_buckets() {
                cum = cumulative;
                let _ = writeln!(
                    out,
                    "{name}_bucket{} {cumulative}",
                    label_block(labels, Some(&format_scaled(bound, scale))),
                );
            }
            let _ = writeln!(
                out,
                "{name}_bucket{} {cum}",
                label_block(labels, Some("+Inf"))
            );
            let sum = format_scaled(h.sum(), scale);
            let _ = writeln!(out, "{name}_sum{} {sum}", label_block(labels, None));
            let _ = writeln!(out, "{name}_count{} {cum}", label_block(labels, None));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_values_are_escaped() {
        let labels = vec![("path".to_string(), "a\\b\"c\nd".to_string())];
        assert_eq!(label_block(&labels, None), "{path=\"a\\\\b\\\"c\\nd\"}");
        assert_eq!(label_block(&[], None), "");
        assert_eq!(label_block(&[], Some("+Inf")), "{le=\"+Inf\"}");
    }

    #[test]
    fn bounds_format_cleanly() {
        assert_eq!(format_scaled(250, 1.0), "250");
        assert_eq!(format_scaled(2_000_000, 1e-6), "2");
        assert_eq!(format_scaled(1500, 1e-3), "1.5");
        assert_eq!(format_scaled(1, 1e-6), "0.000001");
        assert_eq!(format_scaled(95_200, 1e-6), "0.0952");
    }

    #[test]
    fn histogram_series_are_cumulative_and_consistent() {
        let r = Registry::new();
        let h = r.histogram("t_seconds", "test latencies", 1e-6, &[("stage", "parse")]);
        for v in [100u64, 100, 5_000, 90_000] {
            h.record(v);
        }
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE t_seconds histogram"));
        // Every bucket line is cumulative and the +Inf bucket equals
        // _count.
        let mut last = 0u64;
        let mut inf = None;
        for line in text.lines().filter(|l| l.starts_with("t_seconds_bucket")) {
            let count: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(count >= last, "bucket counts must be cumulative: {line}");
            last = count;
            if line.contains("le=\"+Inf\"") {
                inf = Some(count);
            }
        }
        assert_eq!(inf, Some(4));
        assert!(text.contains("t_seconds_count{stage=\"parse\"} 4"));
        // _sum is scaled into seconds: 95,200 µs.
        assert!(text.contains("t_seconds_sum{stage=\"parse\"} 0.0952"));
    }

    #[test]
    fn golden_scrape_of_a_small_registry() {
        let r = Registry::new();
        r.counter("g_grades_total", "Grades served", &[("outcome", "fixed")])
            .add(3);
        r.counter("g_grades_total", "Grades served", &[("outcome", "correct")])
            .add(2);
        r.gauge("g_inflight", "Requests in flight", &[]).set(1);
        let h = r.histogram("g_latency_seconds", "Grade latency", 1e-6, &[]);
        h.record(7); // bucket upper edge 7
        h.record(1_000_000); // bucket [983040..1015807], edge 1015807
        let expected = "\
# HELP g_grades_total Grades served
# TYPE g_grades_total counter
g_grades_total{outcome=\"correct\"} 2
g_grades_total{outcome=\"fixed\"} 3
# HELP g_inflight Requests in flight
# TYPE g_inflight gauge
g_inflight 1
# HELP g_latency_seconds Grade latency
# TYPE g_latency_seconds histogram
g_latency_seconds_bucket{le=\"0.000007\"} 1
g_latency_seconds_bucket{le=\"1.015807\"} 2
g_latency_seconds_bucket{le=\"+Inf\"} 2
g_latency_seconds_sum 1.000007
g_latency_seconds_count 2
";
        assert_eq!(r.render_prometheus(), expected);
    }
}
