//! Differential test of the synthesis back ends (CEGIS vs enumeration vs
//! portfolio).
//!
//! For every corpus problem and a seeded mutant sweep over its correct
//! variants, all three back ends must agree on the verdict: already
//! correct, repairable at the *same* minimal cost, or not repairable
//! within the bounds.  The search budget is candidate-bounded and the cost
//! bound is 1 (single injected mistake), so every back end runs its search
//! space to exhaustion and the comparison is deterministic — a divergence
//! is a real bug in one of the engines, not budget noise.  Portfolio
//! outcomes must additionally be definitive (first proof wins) and name
//! the winning strategy in their stats.

use std::time::Duration;

use afg_corpus::problems;
use afg_corpus::rng::StdRng;
use afg_eml::apply_error_model;
use afg_synth::{Backend, SynthesisConfig, SynthesisOutcome};

fn config() -> SynthesisConfig {
    SynthesisConfig {
        max_cost: 1,
        max_candidates: 200_000,
        time_budget: Duration::from_secs(600),
    }
}

/// Collapses an outcome into the comparable verdict.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum Verdict {
    Correct,
    Fixed(usize),
    NoRepair,
}

fn verdict(outcome: &SynthesisOutcome, context: &str) -> Verdict {
    match outcome {
        SynthesisOutcome::AlreadyCorrect => Verdict::Correct,
        SynthesisOutcome::Fixed(solution) => {
            assert!(
                solution.minimal,
                "{context}: exhaustive budgets must prove minimality"
            );
            Verdict::Fixed(solution.cost)
        }
        SynthesisOutcome::NoRepairFound(_) => Verdict::NoRepair,
        SynthesisOutcome::Timeout(_) => {
            panic!("{context}: candidate-bounded search must not time out")
        }
    }
}

/// The repair-transfer acceptance criterion, as a differential property:
/// for seeded classroom cohorts over several problems, warm-started
/// grading (fingerprint cache + skeleton-cluster repair transfer) must
/// produce outcome- and cost-identical verdicts to the cold run, while
/// actually transferring (hits > 0) and doing strictly less search work.
#[test]
fn clustered_warm_grading_is_outcome_identical_to_cold() {
    use afg_bench::classroom::{classroom_cohort, run_classroom, ClassroomSpec};

    // Candidate-bounded and small: this sweep runs in debug CI, so every
    // interpreted candidate counts.  Unfixable members settle as
    // (deterministic) candidate-budget timeouts, which compare fine.
    let grading = afg_core::GraderConfig {
        synthesis: SynthesisConfig {
            max_cost: 2,
            max_candidates: 300,
            time_budget: Duration::from_secs(600),
        },
        ..afg_core::GraderConfig::fast()
    };

    let mut total_hits = 0u64;
    for (problem, seed) in [
        (problems::compute_deriv(), 3u64),
        (problems::iter_power(), 17u64),
    ] {
        let spec = ClassroomSpec {
            students: 12,
            skeletons: 3,
            seed,
        };
        let cohort = classroom_cohort(&problem, &spec);
        let grader = problem.autograder(grading.clone());
        let cold = run_classroom(&grader, &cohort, 1, false);
        let warm = run_classroom(&grader, &cohort, 1, true);

        assert_eq!(
            cold.verdicts, warm.verdicts,
            "{}: repair transfer must never change a verdict or its cost",
            problem.id
        );
        assert!(
            warm.sat_conflicts < cold.sat_conflicts,
            "{}: warm-started grading must report strictly fewer SAT \
             conflicts than the cold baseline ({} vs {})",
            problem.id,
            warm.sat_conflicts,
            cold.sat_conflicts
        );
        assert!(
            warm.candidates_checked <= cold.candidates_checked,
            "{}: warm pass must not add candidate verifications ({} vs {})",
            problem.id,
            warm.candidates_checked,
            cold.candidates_checked
        );
        total_hits += warm.totals.transfer_hits as u64;
    }
    assert!(
        total_hits > 0,
        "the cohorts' redundancy must produce at least one verified transfer"
    );
}

#[test]
fn all_backends_agree_on_repair_cost_across_the_corpus() {
    let mut checked = 0usize;
    for problem in problems::all_problems() {
        let grader = problem.autograder(afg_core::GraderConfig::fast());
        let oracle = grader.oracle();
        let model = grader.model();

        // The submissions under test: each correct variant untouched (must
        // grade AlreadyCorrect) plus seeded single-mutation mutants.
        let mut submissions = Vec::new();
        for (variant_index, seed_source) in problem.mutation_seeds().into_iter().enumerate() {
            let clean = afg_parser::parse_program(seed_source).expect("corpus seeds parse");
            if variant_index == 0 {
                submissions.push((format!("{}/clean", problem.id), clean.clone()));
            }
            for seed in 0..2u64 {
                let mut mutant = clean.clone();
                let mut rng = StdRng::seed_from_u64(
                    seed ^ (problem.id.len() as u64) << 8 ^ (variant_index as u64) << 16,
                );
                afg_corpus::mutate_program(&mut mutant, 1, &mut rng);
                submissions.push((format!("{}/v{variant_index}s{seed}", problem.id), mutant));
            }
        }

        for (label, submission) in submissions {
            let Ok(choice_program) = apply_error_model(&submission, Some(problem.entry), model)
            else {
                continue; // mutant lost its entry function — nothing to compare
            };
            let cegis = Backend::Cegis.synthesize(&choice_program, oracle, &config());
            let enumerative = Backend::Enumerative.synthesize(&choice_program, oracle, &config());
            let portfolio = Backend::Portfolio.synthesize(&choice_program, oracle, &config());

            let cegis_verdict = verdict(&cegis, &format!("{label} cegis"));
            let enum_verdict = verdict(&enumerative, &format!("{label} enum"));
            let portfolio_verdict = verdict(&portfolio, &format!("{label} portfolio"));
            assert_eq!(
                cegis_verdict, enum_verdict,
                "{label}: cegis and enumeration disagree ({cegis:?} vs {enumerative:?})"
            );
            assert_eq!(
                cegis_verdict, portfolio_verdict,
                "{label}: portfolio disagrees with its members"
            );

            // The portfolio's result is a proof and its stats attribute the
            // win to one of the racing strategies.
            assert!(portfolio.is_definitive(), "{label}: portfolio must prove");
            if let Some(stats) = portfolio.stats() {
                assert!(
                    ["cegis", "enum"].contains(&stats.strategy),
                    "{label}: portfolio stats name '{}' as winner",
                    stats.strategy
                );
            }
            checked += 1;
        }
    }
    assert!(
        checked >= problems::all_problems().len(),
        "the sweep must exercise every problem (checked {checked})"
    );
}
