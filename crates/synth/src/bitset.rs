//! A growable index bitset.
//!
//! The CEGIS and enumerative loops keep counterexamples in an ordered `Vec`
//! (the *order* is the fast-rejection heuristic: oldest killers first) but
//! also need an O(1) "have we already recorded this input index?" check —
//! previously a linear `Vec::contains` that degraded quadratically on
//! counterexample-heavy searches.  Input indices are dense (positions in
//! the oracle's bounded input enumeration), so a word-packed bitset is the
//! natural membership structure.

/// A set of `usize` indices backed by 64-bit words.
#[derive(Debug, Clone, Default)]
pub(crate) struct IndexBitset {
    words: Vec<u64>,
}

impl IndexBitset {
    /// Inserts `index`; returns `true` when it was not present before.
    pub(crate) fn insert(&mut self, index: usize) -> bool {
        let word = index / 64;
        let mask = 1u64 << (index % 64);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let fresh = self.words[word] & mask == 0;
        self.words[word] |= mask;
        fresh
    }

    /// Whether `index` has been inserted.
    #[cfg(test)]
    pub(crate) fn contains(&self, index: usize) -> bool {
        self.words
            .get(index / 64)
            .is_some_and(|word| word & (1u64 << (index % 64)) != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_reports_novelty_and_membership_tracks() {
        let mut set = IndexBitset::default();
        assert!(!set.contains(0));
        assert!(set.insert(0));
        assert!(!set.insert(0));
        assert!(set.contains(0));

        // Across word boundaries, including growth.
        for index in [63, 64, 65, 1000] {
            assert!(!set.contains(index));
            assert!(set.insert(index));
            assert!(set.contains(index));
            assert!(!set.insert(index));
        }
        assert!(!set.contains(999));
        assert!(!set.contains(100_000));
    }
}
