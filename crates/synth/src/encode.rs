//! SAT encoding of the choice space.
//!
//! Every choice site of the M̃PY program gets one boolean *selector* variable
//! per non-default option (the paper's translation gives each expression
//! choice a SKETCH hole plus a boolean `choice_k` variable, §2.3).  The
//! encoding enforces at most one selected option per site; a site with no
//! selected option takes its default.  `totalCost` is the number of selector
//! variables set to true.  The cost bound is **not** baked into the clause
//! database: a [`afg_sat::Totalizer`] built once over the selectors exposes
//! one output literal per possible count, and CEGISMIN activates
//! `totalCost ≤ k` by passing the negated `k+1`-th output as an
//! *assumption* to each solve call — the whole minimisation descent then
//! runs on a single solver instance with all learnt clauses intact.

use std::collections::BTreeMap;

use afg_eml::{ChoiceAssignment, ChoiceId, ChoiceProgram};
use afg_sat::{add_at_most, Lit, Model, Solver, Totalizer, Var};

/// Per-thread instrumentation of encoding constructions.
///
/// The incremental-CEGISMIN acceptance criterion is "exactly one
/// [`ChoiceEncoding::new`] per synthesize call"; a thread-local counter
/// makes that checkable from a unit test without false positives from
/// concurrently running tests.
pub mod instrument {
    use std::cell::Cell;

    thread_local! {
        static ENCODINGS: Cell<u64> = const { Cell::new(0) };
    }

    pub(super) fn record_encoding() {
        ENCODINGS.with(|count| count.set(count.get() + 1));
    }

    /// Number of [`super::ChoiceEncoding`] values constructed on this
    /// thread since it started.
    pub fn encodings_created() -> u64 {
        ENCODINGS.with(Cell::get)
    }
}

/// The selector variables for one synthesis run.
#[derive(Debug, Clone)]
pub struct ChoiceEncoding {
    /// For every choice site, the selector variable of each non-default
    /// option (`selectors[id][j]` selects option `j + 1`).
    selectors: BTreeMap<ChoiceId, Vec<Var>>,
    /// Unary counter over all selector literals; drives the assumption-based
    /// cost bounds.
    totalizer: Totalizer,
}

impl ChoiceEncoding {
    /// Creates selector variables, at-most-one constraints for every choice
    /// site, and the totalizer counting the total cost.
    ///
    /// The totalizer is built at full width: real choice programs have
    /// tens of selectors, so the O(n²) merge is ~1–2k clauses, and
    /// measurements showed the bound-pruned variant
    /// ([`Totalizer::with_cap`]) perturbs the solver's model-enumeration
    /// order enough to cost more candidate verifications than the clause
    /// savings buy.  Revisit if error models ever grow to hundreds of
    /// selectors.
    pub fn new(solver: &mut Solver, program: &ChoiceProgram) -> ChoiceEncoding {
        instrument::record_encoding();
        let mut selectors = BTreeMap::new();
        for info in &program.choices {
            let non_default_options = info.options.len().saturating_sub(1);
            let vars = solver.new_vars(non_default_options);
            if vars.len() > 1 {
                let lits: Vec<Lit> = vars.iter().map(|v| v.positive()).collect();
                // At most one option per site (selecting none = default).
                add_at_most(solver, &lits, 1);
            }
            selectors.insert(info.id, vars);
        }
        let all_lits: Vec<Lit> = selectors
            .values()
            .flat_map(|vars| vars.iter().map(|v| v.positive()))
            .collect();
        let totalizer = Totalizer::new(solver, &all_lits);
        ChoiceEncoding {
            selectors,
            totalizer,
        }
    }

    /// All selector literals, used for the global cost bound.
    pub fn all_selector_lits(&self) -> Vec<Lit> {
        self.selectors
            .values()
            .flat_map(|vars| vars.iter().map(|v| v.positive()))
            .collect()
    }

    /// Total number of choice sites encoded.
    pub fn num_sites(&self) -> usize {
        self.selectors.len()
    }

    /// The assumptions activating `totalCost ≤ bound` for one solve call
    /// (the CEGISMIN refinement step enforces `totalCost < best` by passing
    /// `best - 1`).  Empty when the bound is vacuous.  Nothing is added to
    /// the solver: tightening the bound on the next call is free and every
    /// learnt clause remains valid.
    pub fn cost_bound_assumptions(&self, bound: usize) -> Vec<Lit> {
        self.totalizer.at_most(bound).into_iter().collect()
    }

    /// Decodes a SAT model into a choice assignment.
    pub fn decode(&self, model: &Model) -> ChoiceAssignment {
        let mut assignment = ChoiceAssignment::default_choices();
        for (&id, vars) in &self.selectors {
            for (j, var) in vars.iter().enumerate() {
                if model.value(*var) {
                    assignment.select(id, j + 1);
                    break;
                }
            }
        }
        assignment
    }

    /// Adds a clause excluding exactly this assignment (the CEGIS blocking
    /// clause added after a candidate fails a counterexample).
    pub fn block_assignment(&self, solver: &mut Solver, assignment: &ChoiceAssignment) -> bool {
        let mut clause: Vec<Lit> = Vec::new();
        for (&id, vars) in &self.selectors {
            let selected = assignment.selected(id);
            if selected == 0 {
                // The candidate kept the default here; a different candidate
                // must select *something* at this site...
                clause.extend(vars.iter().map(|v| v.positive()));
            } else {
                // ...or deselect the option chosen here.
                if let Some(var) = vars.get(selected - 1) {
                    clause.push(var.negative());
                }
            }
        }
        solver.add_clause(&clause)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afg_eml::{CFuncDef, ChoiceInfo};
    use afg_sat::SatResult;

    fn toy_program(option_counts: &[usize]) -> ChoiceProgram {
        ChoiceProgram {
            func: CFuncDef {
                name: "f".into(),
                params: vec![],
                body: vec![],
                line: 1,
            },
            other_funcs: vec![],
            choices: option_counts
                .iter()
                .enumerate()
                .map(|(i, &n)| ChoiceInfo {
                    id: ChoiceId(i as u32),
                    line: 1,
                    rule: "R".into(),
                    original: "x".into(),
                    options: (0..n).map(|j| format!("opt{j}")).collect(),
                    message: None,
                })
                .collect(),
        }
    }

    #[test]
    fn encoding_allocates_one_var_per_non_default_option() {
        let mut solver = Solver::new();
        let program = toy_program(&[3, 2, 4]);
        let encoding = ChoiceEncoding::new(&mut solver, &program);
        assert_eq!(encoding.num_sites(), 3);
        assert_eq!(encoding.all_selector_lits().len(), 2 + 1 + 3);
    }

    #[test]
    fn decode_respects_at_most_one_per_site() {
        let mut solver = Solver::new();
        let program = toy_program(&[4, 3]);
        let encoding = ChoiceEncoding::new(&mut solver, &program);
        // Force some selection at site 0 to make the model interesting.
        let lits = encoding.all_selector_lits();
        solver.add_clause(&lits[0..3]);
        match solver.solve() {
            SatResult::Sat(model) => {
                let assignment = encoding.decode(&model);
                assert!(assignment.selected(ChoiceId(0)) >= 1);
                assert!(assignment.selected(ChoiceId(0)) <= 3);
                assert!(assignment.cost() >= 1);
            }
            SatResult::Unsat => panic!("toy encoding must be satisfiable"),
        }
    }

    #[test]
    fn cost_bound_zero_forces_the_default_program() {
        let mut solver = Solver::new();
        let program = toy_program(&[3, 3]);
        let encoding = ChoiceEncoding::new(&mut solver, &program);
        let assumptions = encoding.cost_bound_assumptions(0);
        assert_eq!(assumptions.len(), 1);
        match solver.solve_under_assumptions(&assumptions) {
            SatResult::Sat(model) => assert_eq!(encoding.decode(&model).cost(), 0),
            SatResult::Unsat => panic!("all-default must satisfy a zero cost bound"),
        }
        // The bound was an assumption: the same solver can still select.
        let lits = encoding.all_selector_lits();
        assert!(solver.add_clause(&lits[0..1]));
        match solver.solve() {
            SatResult::Sat(model) => assert!(encoding.decode(&model).cost() >= 1),
            SatResult::Unsat => panic!("unbounded solve must succeed"),
        }
    }

    #[test]
    fn tightening_bounds_by_assumption_reaches_unsat() {
        // Force a selection at both sites; bounds 2, 1, 0 then descend to
        // Unsat on one solver, the CEGISMIN shape.
        let mut solver = Solver::new();
        let program = toy_program(&[2, 2]);
        let encoding = ChoiceEncoding::new(&mut solver, &program);
        let lits = encoding.all_selector_lits();
        for lit in &lits {
            assert!(solver.add_clause(&[*lit]));
        }
        assert!(solver
            .solve_under_assumptions(&encoding.cost_bound_assumptions(2))
            .is_sat());
        assert_eq!(
            solver.solve_under_assumptions(&encoding.cost_bound_assumptions(1)),
            SatResult::Unsat
        );
        assert_eq!(
            solver.solve_under_assumptions(&encoding.cost_bound_assumptions(0)),
            SatResult::Unsat
        );
        // Vacuous bound: no assumptions, still satisfiable.
        assert!(encoding.cost_bound_assumptions(2).len() <= 1);
        assert!(solver.solve().is_sat());
    }

    #[test]
    fn instrument_counts_encodings_per_thread() {
        let before = instrument::encodings_created();
        let mut solver = Solver::new();
        let _ = ChoiceEncoding::new(&mut solver, &toy_program(&[2]));
        let _ = ChoiceEncoding::new(&mut solver, &toy_program(&[3]));
        assert_eq!(instrument::encodings_created() - before, 2);
    }

    #[test]
    fn blocking_excludes_the_exact_assignment() {
        let mut solver = Solver::new();
        let program = toy_program(&[2, 2]);
        let encoding = ChoiceEncoding::new(&mut solver, &program);
        // Enumerate all models, blocking each; the space has 2*2 = 4
        // assignments (each site: default or its single alternative).
        let mut seen = Vec::new();
        loop {
            match solver.solve() {
                SatResult::Unsat => break,
                SatResult::Sat(model) => {
                    let assignment = encoding.decode(&model);
                    assert!(
                        !seen.contains(&assignment),
                        "assignment repeated: {assignment:?}"
                    );
                    seen.push(assignment.clone());
                    assert!(seen.len() <= 4);
                    encoding.block_assignment(&mut solver, &assignment);
                }
            }
        }
        assert_eq!(seen.len(), 4);
    }
}
