//! Runtime errors raised while interpreting MPY programs.
//!
//! Student submissions routinely crash (index out of range, type confusion,
//! infinite loops); the grader treats every error as "this input
//! distinguishes the submission from the reference", so errors are ordinary
//! values from the grader's point of view rather than process failures.

use std::error::Error;
use std::fmt;

/// A runtime error produced by the MPY interpreter.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RuntimeError {
    /// Operation applied to values of the wrong type (`TypeError`).
    Type(String),
    /// Name not bound in the current scope (`NameError`).
    Name(String),
    /// Sequence index out of range (`IndexError`).
    Index(String),
    /// Missing dictionary key (`KeyError`).
    Key(String),
    /// Bad value for an otherwise well-typed operation, e.g. `list.index`
    /// on a missing element (`ValueError`).
    Value(String),
    /// Integer division or modulo by zero (`ZeroDivisionError`).
    ZeroDivision,
    /// Arithmetic overflowed the host integer width (student exponentials
    /// can explode; Python would keep going with bignums, we stop).
    Overflow,
    /// The step budget was exhausted — the MPY program is looping
    /// (or recursing) too long.  Plays the role of the paper's 4-minute
    /// timeout, but counted in interpreter steps for determinism.
    FuelExhausted,
    /// Recursion deeper than the configured bound.
    RecursionLimit,
    /// The program used a feature outside the supported MPY subset
    /// ("Unimplemented features" bucket in paper §5.3).
    Unsupported(String),
}

impl RuntimeError {
    /// Short Python-style class name for the error (used in reports).
    pub fn kind(&self) -> &'static str {
        match self {
            RuntimeError::Type(_) => "TypeError",
            RuntimeError::Name(_) => "NameError",
            RuntimeError::Index(_) => "IndexError",
            RuntimeError::Key(_) => "KeyError",
            RuntimeError::Value(_) => "ValueError",
            RuntimeError::ZeroDivision => "ZeroDivisionError",
            RuntimeError::Overflow => "OverflowError",
            RuntimeError::FuelExhausted => "Timeout",
            RuntimeError::RecursionLimit => "RecursionError",
            RuntimeError::Unsupported(_) => "UnsupportedFeature",
        }
    }

    /// Whether the error is a resource bound (timeout / recursion) rather
    /// than a genuine semantic error of the program.
    pub fn is_resource_limit(&self) -> bool {
        matches!(
            self,
            RuntimeError::FuelExhausted | RuntimeError::RecursionLimit
        )
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Type(msg)
            | RuntimeError::Name(msg)
            | RuntimeError::Index(msg)
            | RuntimeError::Key(msg)
            | RuntimeError::Value(msg)
            | RuntimeError::Unsupported(msg) => write!(f, "{}: {}", self.kind(), msg),
            _ => write!(f, "{}", self.kind()),
        }
    }
}

impl Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_display() {
        assert_eq!(RuntimeError::ZeroDivision.kind(), "ZeroDivisionError");
        assert_eq!(
            RuntimeError::Type("cannot add int and list".into()).to_string(),
            "TypeError: cannot add int and list"
        );
        assert_eq!(RuntimeError::FuelExhausted.to_string(), "Timeout");
    }

    #[test]
    fn resource_limits_are_classified() {
        assert!(RuntimeError::FuelExhausted.is_resource_limit());
        assert!(RuntimeError::RecursionLimit.is_resource_limit());
        assert!(!RuntimeError::ZeroDivision.is_resource_limit());
    }
}
