//! The paper's worked example (Section 2 / Figure 2): `computeDeriv`
//! submissions graded with the Figure 8 error model, shown at the different
//! feedback levels the instructor can choose.
//!
//! ```text
//! cargo run --example compute_deriv
//! ```

use autofeedback::corpus::problems;
use autofeedback::{FeedbackLevel, GradeOutcome, GraderConfig};

const STUDENTS: &[(&str, &str)] = &[
    (
        "Figure 2(a)",
        "\
def computeDeriv(poly):
    deriv = []
    zero = 0
    if (len(poly) == 1):
        return deriv
    for e in range(0, len(poly)):
        if (poly[e] == 0):
            zero += 1
        else:
            deriv.append(poly[e]*e)
    return deriv
",
    ),
    (
        "Figure 2(c)",
        "\
def computeDeriv(poly):
    length = int(len(poly)-1)
    i = length
    deriv = range(1,length)
    if len(poly) == 1:
        deriv = [0]
    else:
        while i >= 0:
            new = poly[i] * i
            i -= 1
            deriv[i] = new
    return deriv
",
    ),
];

fn main() {
    let problem = problems::compute_deriv();
    let grader = problem.autograder(GraderConfig::default());

    for (label, source) in STUDENTS {
        println!("=== {label} ===");
        match grader.grade_source(source) {
            GradeOutcome::Feedback(feedback) => {
                println!("-- full feedback --");
                print!("{}", feedback.render(FeedbackLevel::full()));
                println!("-- hint only --");
                print!("{}", feedback.render(FeedbackLevel::hint()));
                println!("-- location only --");
                print!("{}", feedback.render(FeedbackLevel::location_only()));
            }
            GradeOutcome::Correct => println!("already correct"),
            other => println!("{other:?}"),
        }
        println!();
    }
}
