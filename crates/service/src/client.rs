//! A minimal JSON-over-HTTP client for the grading daemon.
//!
//! Used by the integration tests and the `loadgen` benchmark driver; it
//! speaks exactly the subset of HTTP/1.1 the server does (keep-alive,
//! `Content-Length` bodies).

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use afg_json::{parse_json, Json};

/// Response headers: `(name, value)` pairs with lower-cased names, in
/// arrival order.
pub type Headers = Vec<(String, String)>;

/// A persistent (keep-alive) connection to the daemon.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Opens a connection.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
        })
    }

    /// Sends one request and reads the JSON response.
    ///
    /// Returns `(status, body)`.  The connection stays open for the next
    /// request.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> io::Result<(u16, Json)> {
        let (status, _, json) = self.request_full(method, path, body)?;
        Ok((status, json))
    }

    /// [`Client::request`] keeping the response headers (lower-cased
    /// names) — for `X-Afg-Trace-Id`.
    pub fn request_full(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> io::Result<(u16, Headers, Json)> {
        let (status, headers, text) = self.request_raw(method, path, body)?;
        let json = parse_json(&text)
            .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))?;
        Ok((status, headers, json))
    }

    /// Sends one request and returns the body as raw text — for
    /// non-JSON endpoints (`/metrics` is Prometheus text).
    pub fn request_raw(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> io::Result<(u16, Headers, String)> {
        let payload = body.map(Json::to_string).unwrap_or_default();
        let mut message = format!(
            "{method} {path} HTTP/1.1\r\n\
             Host: afg-service\r\n\
             Content-Type: application/json\r\n\
             Content-Length: {}\r\n\
             \r\n",
            payload.len()
        );
        message.push_str(&payload);
        self.writer.write_all(message.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Convenience: `POST` with a JSON body.
    pub fn post(&mut self, path: &str, body: &Json) -> io::Result<(u16, Json)> {
        self.request("POST", path, Some(body))
    }

    /// Convenience: `GET`.
    pub fn get(&mut self, path: &str) -> io::Result<(u16, Json)> {
        self.request("GET", path, None)
    }

    /// Convenience: `GET` returning the raw body text.
    pub fn get_text(&mut self, path: &str) -> io::Result<(u16, String)> {
        let (status, _, text) = self.request_raw("GET", path, None)?;
        Ok((status, text))
    }

    fn read_response(&mut self) -> io::Result<(u16, Headers, String)> {
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line: {status_line:?}"),
                )
            })?;

        let mut content_length = 0usize;
        let mut headers = Vec::new();
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside response headers",
                ));
            }
            let trimmed = line.trim();
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, value)) = trimmed.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim().to_string();
                if name == "content-length" {
                    content_length = value.parse().map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                    })?;
                }
                headers.push((name, value));
            }
        }

        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let text = String::from_utf8(body)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 body"))?;
        Ok((status, headers, text))
    }
}

/// One-shot `POST` on a fresh connection.
pub fn post(addr: impl ToSocketAddrs, path: &str, body: &Json) -> io::Result<(u16, Json)> {
    Client::connect(addr)?.post(path, body)
}

/// One-shot `GET` on a fresh connection.
pub fn get(addr: impl ToSocketAddrs, path: &str) -> io::Result<(u16, Json)> {
    Client::connect(addr)?.get(path)
}
