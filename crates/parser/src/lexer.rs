//! Indentation-aware lexer for MPY.
//!
//! The lexer turns MPY source into a stream of [`Token`]s, synthesising
//! `Indent`/`Dedent`/`Newline` tokens from the layout exactly the way the
//! CPython tokenizer does for the subset we support: comments are stripped,
//! blank lines ignored, and lines are implicitly joined while inside
//! brackets.

use crate::ParseError;

/// A lexical token together with the position it started at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
    /// The token itself.
    pub kind: TokenKind,
}

/// The kinds of MPY tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Integer literal.
    Int(i64),
    /// String literal (contents only, quotes removed).
    Str(String),
    /// Identifier that is not a keyword.
    Name(String),
    /// Keyword (`def`, `return`, `if`, ...).
    Keyword(Keyword),
    /// Punctuation or operator.
    Op(Op),
    /// End of a logical line.
    Newline,
    /// Increase of indentation starting a block.
    Indent,
    /// Decrease of indentation ending a block.
    Dedent,
    /// End of input.
    Eof,
}

/// MPY keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    Def,
    Return,
    If,
    Elif,
    Else,
    While,
    For,
    In,
    Not,
    And,
    Or,
    True,
    False,
    None,
    Pass,
    Break,
    Continue,
    Print,
}

impl Keyword {
    fn from_str(word: &str) -> Option<Keyword> {
        Some(match word {
            "def" => Keyword::Def,
            "return" => Keyword::Return,
            "if" => Keyword::If,
            "elif" => Keyword::Elif,
            "else" => Keyword::Else,
            "while" => Keyword::While,
            "for" => Keyword::For,
            "in" => Keyword::In,
            "not" => Keyword::Not,
            "and" => Keyword::And,
            "or" => Keyword::Or,
            "True" => Keyword::True,
            "False" => Keyword::False,
            "None" => Keyword::None,
            "pass" => Keyword::Pass,
            "break" => Keyword::Break,
            "continue" => Keyword::Continue,
            "print" => Keyword::Print,
            _ => return None,
        })
    }
}

/// Operators and punctuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    Plus,
    Minus,
    Star,
    DoubleStar,
    Slash,
    DoubleSlash,
    Percent,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Colon,
    Dot,
    Semicolon,
}

/// Tokenizes MPY source.
///
/// # Errors
///
/// Returns a [`ParseError`] on unterminated strings, inconsistent
/// indentation, integer overflow or characters outside the MPY alphabet
/// (e.g. tabs mixed with spaces are accepted, but `@` is not).
pub fn tokenize(source: &str) -> Result<Vec<Token>, ParseError> {
    let mut tokens = Vec::new();
    let mut indent_stack: Vec<usize> = vec![0];
    let mut bracket_depth: usize = 0;

    for (line_idx, raw_line) in source.lines().enumerate() {
        let line_no = (line_idx + 1) as u32;
        let line = raw_line.trim_end();

        // Measure indentation before stripping it (tabs count as 8 columns,
        // mirroring CPython's default tab size).
        let mut indent = 0usize;
        let mut content_start = 0usize;
        for (i, ch) in line.char_indices() {
            match ch {
                ' ' => indent += 1,
                '\t' => indent += 8 - (indent % 8),
                _ => {
                    content_start = i;
                    break;
                }
            }
            content_start = i + ch.len_utf8();
        }
        let content = &line[content_start..];
        if content.is_empty() || content.starts_with('#') {
            continue; // blank line or pure comment
        }

        // Layout handling is suppressed inside brackets (implicit joining).
        if bracket_depth == 0 {
            let current = *indent_stack.last().expect("indent stack is never empty");
            if indent > current {
                afg_cov::cov_hit!();
                indent_stack.push(indent);
                tokens.push(Token {
                    line: line_no,
                    col: 1,
                    kind: TokenKind::Indent,
                });
            } else if indent < current {
                afg_cov::cov_hit!();
                while *indent_stack.last().expect("indent stack is never empty") > indent {
                    indent_stack.pop();
                    tokens.push(Token {
                        line: line_no,
                        col: 1,
                        kind: TokenKind::Dedent,
                    });
                }
                if *indent_stack.last().expect("indent stack is never empty") != indent {
                    afg_cov::cov_hit!();
                    return Err(ParseError::new(
                        line_no,
                        1,
                        "unindent does not match any outer indentation level",
                    ));
                }
            }
        }

        lex_line(
            content,
            line_no,
            content_start as u32 + 1,
            &mut tokens,
            &mut bracket_depth,
        )?;

        if bracket_depth == 0 {
            tokens.push(Token {
                line: line_no,
                col: line.len() as u32 + 1,
                kind: TokenKind::Newline,
            });
        }
    }

    if bracket_depth > 0 {
        afg_cov::cov_hit!();
        return Err(ParseError::new(
            source.lines().count() as u32,
            1,
            "unexpected end of input inside brackets",
        ));
    }
    let last_line = source.lines().count().max(1) as u32;
    while indent_stack.len() > 1 {
        indent_stack.pop();
        tokens.push(Token {
            line: last_line,
            col: 1,
            kind: TokenKind::Dedent,
        });
    }
    tokens.push(Token {
        line: last_line,
        col: 1,
        kind: TokenKind::Eof,
    });
    Ok(tokens)
}

fn lex_line(
    content: &str,
    line: u32,
    col_offset: u32,
    tokens: &mut Vec<Token>,
    bracket_depth: &mut usize,
) -> Result<(), ParseError> {
    let bytes: Vec<char> = content.chars().collect();
    let mut i = 0usize;
    while i < bytes.len() {
        let ch = bytes[i];
        let col = col_offset + i as u32;
        match ch {
            ' ' | '\t' => {
                i += 1;
            }
            '#' => {
                afg_cov::cov_hit!();
                break; // trailing comment
            }
            '0'..='9' => {
                afg_cov::cov_hit!();
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                // Reject float literals explicitly: MPY is integer-only.
                if i < bytes.len()
                    && bytes[i] == '.'
                    && i + 1 < bytes.len()
                    && bytes[i + 1].is_ascii_digit()
                {
                    afg_cov::cov_hit!();
                    return Err(ParseError::new(
                        line,
                        col,
                        "floating point literals are not supported in MPY",
                    ));
                }
                let text: String = bytes[start..i].iter().collect();
                let value: i64 = text
                    .parse()
                    .map_err(|_| ParseError::new(line, col, "integer literal out of range"))?;
                tokens.push(Token {
                    line,
                    col,
                    kind: TokenKind::Int(value),
                });
            }
            '\'' | '"' => {
                afg_cov::cov_hit!();
                let quote = ch;
                let mut value = String::new();
                i += 1;
                let mut closed = false;
                while i < bytes.len() {
                    let c = bytes[i];
                    if c == '\\' && i + 1 < bytes.len() {
                        let escaped = bytes[i + 1];
                        value.push(match escaped {
                            'n' => '\n',
                            't' => '\t',
                            '\\' => '\\',
                            '\'' => '\'',
                            '"' => '"',
                            other => other,
                        });
                        i += 2;
                        continue;
                    }
                    if c == quote {
                        closed = true;
                        i += 1;
                        break;
                    }
                    value.push(c);
                    i += 1;
                }
                if !closed {
                    afg_cov::cov_hit!();
                    return Err(ParseError::new(line, col, "unterminated string literal"));
                }
                tokens.push(Token {
                    line,
                    col,
                    kind: TokenKind::Str(value),
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                afg_cov::cov_hit!();
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let word: String = bytes[start..i].iter().collect();
                let kind = match Keyword::from_str(&word) {
                    Some(kw) => TokenKind::Keyword(kw),
                    None => TokenKind::Name(word),
                };
                tokens.push(Token { line, col, kind });
            }
            _ => {
                afg_cov::cov_hit!();
                let (op, advance) = lex_operator(&bytes, i).ok_or_else(|| {
                    ParseError::new(line, col, format!("unexpected character '{ch}'"))
                })?;
                match op {
                    Op::LParen | Op::LBracket | Op::LBrace => *bracket_depth += 1,
                    Op::RParen | Op::RBracket | Op::RBrace => {
                        *bracket_depth = bracket_depth.saturating_sub(1);
                    }
                    _ => {}
                }
                tokens.push(Token {
                    line,
                    col,
                    kind: TokenKind::Op(op),
                });
                i += advance;
            }
        }
    }
    Ok(())
}

fn lex_operator(chars: &[char], i: usize) -> Option<(Op, usize)> {
    let two: Option<(char, char)> = if i + 1 < chars.len() {
        Some((chars[i], chars[i + 1]))
    } else {
        None
    };
    if let Some(pair) = two {
        let op = match pair {
            ('*', '*') => Some(Op::DoubleStar),
            ('/', '/') => Some(Op::DoubleSlash),
            ('=', '=') => Some(Op::Eq),
            ('!', '=') => Some(Op::Ne),
            ('<', '=') => Some(Op::Le),
            ('>', '=') => Some(Op::Ge),
            ('+', '=') => Some(Op::PlusAssign),
            ('-', '=') => Some(Op::MinusAssign),
            ('*', '=') => Some(Op::StarAssign),
            ('/', '=') => Some(Op::SlashAssign),
            ('<', '>') => Some(Op::Ne),
            _ => None,
        };
        if let Some(op) = op {
            return Some((op, 2));
        }
    }
    let op = match chars[i] {
        '+' => Op::Plus,
        '-' => Op::Minus,
        '*' => Op::Star,
        '/' => Op::Slash,
        '%' => Op::Percent,
        '=' => Op::Assign,
        '<' => Op::Lt,
        '>' => Op::Gt,
        '(' => Op::LParen,
        ')' => Op::RParen,
        '[' => Op::LBracket,
        ']' => Op::RBracket,
        '{' => Op::LBrace,
        '}' => Op::RBrace,
        ',' => Op::Comma,
        ':' => Op::Colon,
        '.' => Op::Dot,
        ';' => Op::Semicolon,
        _ => return None,
    };
    Some((op, 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<TokenKind> {
        tokenize(source)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_simple_assignment() {
        let toks = kinds("x = 1 + 2\n");
        assert_eq!(
            toks,
            vec![
                TokenKind::Name("x".into()),
                TokenKind::Op(Op::Assign),
                TokenKind::Int(1),
                TokenKind::Op(Op::Plus),
                TokenKind::Int(2),
                TokenKind::Newline,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn emits_indent_and_dedent() {
        let toks = kinds("if x:\n    y = 1\nz = 2\n");
        assert!(toks.contains(&TokenKind::Indent));
        assert!(toks.contains(&TokenKind::Dedent));
        let indent_pos = toks.iter().position(|t| *t == TokenKind::Indent).unwrap();
        let dedent_pos = toks.iter().position(|t| *t == TokenKind::Dedent).unwrap();
        assert!(indent_pos < dedent_pos);
    }

    #[test]
    fn closes_all_blocks_at_eof() {
        let toks = kinds("if x:\n    if y:\n        z = 1\n");
        let dedents = toks.iter().filter(|t| **t == TokenKind::Dedent).count();
        assert_eq!(dedents, 2);
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let toks = kinds("# a comment\n\nx = 1  # trailing\n");
        assert_eq!(
            toks.iter()
                .filter(|t| matches!(t, TokenKind::Newline))
                .count(),
            1
        );
        assert!(toks.contains(&TokenKind::Int(1)));
    }

    #[test]
    fn strings_support_both_quotes_and_escapes() {
        let toks = kinds("s = 'a_\"b'\nt = \"c\\nd\"\n");
        assert!(toks.contains(&TokenKind::Str("a_\"b".into())));
        assert!(toks.contains(&TokenKind::Str("c\nd".into())));
    }

    #[test]
    fn two_char_operators() {
        let toks = kinds("a <= b != c ** d // e += 1\n");
        assert!(toks.contains(&TokenKind::Op(Op::Le)));
        assert!(toks.contains(&TokenKind::Op(Op::Ne)));
        assert!(toks.contains(&TokenKind::Op(Op::DoubleStar)));
        assert!(toks.contains(&TokenKind::Op(Op::DoubleSlash)));
        assert!(toks.contains(&TokenKind::Op(Op::PlusAssign)));
    }

    #[test]
    fn implicit_line_joining_inside_brackets() {
        let toks = kinds("x = [1,\n     2,\n     3]\n");
        // Only one logical line.
        assert_eq!(
            toks.iter()
                .filter(|t| matches!(t, TokenKind::Newline))
                .count(),
            1
        );
        assert!(!toks.contains(&TokenKind::Indent));
    }

    #[test]
    fn keywords_are_recognised() {
        let toks = kinds("def f():\n    return True\n");
        assert!(toks.contains(&TokenKind::Keyword(Keyword::Def)));
        assert!(toks.contains(&TokenKind::Keyword(Keyword::Return)));
        assert!(toks.contains(&TokenKind::Keyword(Keyword::True)));
    }

    #[test]
    fn rejects_bad_indentation() {
        let err = tokenize("if x:\n    y = 1\n  z = 2\n").unwrap_err();
        assert!(err.to_string().contains("unindent"));
    }

    #[test]
    fn rejects_unterminated_string_and_floats() {
        assert!(tokenize("s = 'abc\n").is_err());
        assert!(tokenize("x = 1.5\n").is_err());
    }

    #[test]
    fn rejects_unknown_characters() {
        let err = tokenize("x = @\n").unwrap_err();
        assert!(err.to_string().contains('@'));
    }

    #[test]
    fn token_positions_are_one_based() {
        let toks = tokenize("x = 1\n").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[0].col, 1);
        assert_eq!(toks[2].col, 5);
    }
}
