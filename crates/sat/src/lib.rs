//! A small CDCL SAT solver with cardinality constraints.
//!
//! The paper's tool searches the space of candidate corrections with the
//! SKETCH synthesizer, whose back end is SAT-based CEGIS.  `afg-sat` is the
//! SAT substrate of our reproduction: the synthesis crate encodes each
//! correction choice as boolean selector variables, blocks failed candidates
//! with learnt clauses, and bounds the total correction cost through the
//! cardinality encodings in [`cardinality`].
//!
//! # Example
//!
//! ```
//! use afg_sat::{Solver, SatResult};
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var();
//! let b = solver.new_var();
//! solver.add_clause(&[a.positive(), b.positive()]);
//! solver.add_clause(&[a.negative()]);
//! match solver.solve() {
//!     SatResult::Sat(model) => assert!(model.value(b)),
//!     SatResult::Unsat => unreachable!("the formula is satisfiable"),
//! }
//! ```

pub mod cardinality;
mod literal;
mod solver;

pub use cardinality::{add_at_least, add_at_most};
pub use literal::{Lit, Model, Var};
pub use solver::{SatResult, Solver};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Brute-force satisfiability of a CNF over `n` variables.
    fn brute_force_sat(num_vars: usize, clauses: &[Vec<(usize, bool)>]) -> bool {
        for assignment in 0u32..(1 << num_vars) {
            let value = |v: usize| assignment & (1 << v) != 0;
            if clauses
                .iter()
                .all(|clause| clause.iter().any(|&(v, positive)| value(v) == positive))
            {
                return true;
            }
        }
        false
    }

    fn clause_strategy(num_vars: usize) -> impl Strategy<Value = Vec<(usize, bool)>> {
        prop::collection::vec((0..num_vars, any::<bool>()), 1..=3)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The CDCL solver agrees with brute force on random small CNFs, and
        /// when it reports SAT its model really satisfies every clause.
        #[test]
        fn solver_agrees_with_brute_force(
            clauses in prop::collection::vec(clause_strategy(6), 1..24)
        ) {
            let num_vars = 6usize;
            let mut solver = Solver::new();
            let vars = solver.new_vars(num_vars);
            let mut trivially_unsat = false;
            for clause in &clauses {
                let lits: Vec<Lit> = clause
                    .iter()
                    .map(|&(v, positive)| if positive { vars[v].positive() } else { vars[v].negative() })
                    .collect();
                if !solver.add_clause(&lits) {
                    trivially_unsat = true;
                }
            }
            let expected = brute_force_sat(num_vars, &clauses);
            if trivially_unsat {
                prop_assert!(!expected);
                return Ok(());
            }
            match solver.solve() {
                SatResult::Sat(model) => {
                    prop_assert!(expected, "solver said SAT but brute force says UNSAT");
                    for clause in &clauses {
                        prop_assert!(clause.iter().any(|&(v, positive)| model.value(vars[v]) == positive));
                    }
                }
                SatResult::Unsat => prop_assert!(!expected, "solver said UNSAT but brute force says SAT"),
            }
        }

        /// The at-most-k encoding never admits a model with more than k true
        /// literals, and is satisfiable whenever k > 0.
        #[test]
        fn cardinality_encoding_is_sound(k in 0usize..5, n in 1usize..6) {
            let mut solver = Solver::new();
            let vars = solver.new_vars(n);
            let lits: Vec<Lit> = vars.iter().map(|v| v.positive()).collect();
            prop_assert!(add_at_most(&mut solver, &lits, k));
            match solver.solve() {
                SatResult::Sat(model) => {
                    let count = vars.iter().filter(|v| model.value(**v)).count();
                    prop_assert!(count <= k);
                }
                SatResult::Unsat => {
                    // With no other constraints the all-false assignment always works.
                    prop_assert!(false, "at-most-{k} over {n} free literals must be satisfiable");
                }
            }
        }
    }
}
