//! `obsbench` — measures what the observability layer costs.
//!
//! ```text
//! cargo run --release -p afg-bench --bin obsbench -- \
//!     [--problem ID] [--attempts N] [--reps R] [--seed S]
//! ```
//!
//! Two measurements, JSON on stdout:
//!
//! 1. **Span primitive**: ns per `afg_obs::span()` open/close with no
//!    trace installed (the always-on cost every pipeline stage pays) and
//!    with a trace installed (the per-request cost behind `/debug/traces`).
//! 2. **End-to-end grading**: wall-clock to grade a seeded corpus through
//!    the library path with tracing off (no trace installed) vs on (one
//!    installed trace + root span per submission, as the daemon does),
//!    best of `--reps` runs each, and the relative delta.  The delta is
//!    the number the "near-free when idle" contract is judged by.

use std::time::{Duration, Instant};

use afg_core::{Autograder, GraderConfig};
use afg_corpus::{generate_corpus, problems, CorpusSpec};
use afg_json::{Json, ToJson};
use afg_obs::{span, Trace};

struct Options {
    problem: String,
    attempts: usize,
    reps: usize,
    seed: u64,
}

fn usage() -> String {
    "usage: obsbench [--problem ID] [--attempts N] [--reps R] [--seed S]\n\
     \n\
     --problem ID   benchmark problem to grade (default compDeriv)\n\
     --attempts N   distinct submissions in the corpus (default 16)\n\
     --reps R       repetitions per mode, best-of (default 3)\n\
     --seed S       corpus RNG seed (default 20130616)"
        .to_string()
}

fn parse_options() -> Options {
    let mut options = Options {
        problem: "compDeriv".to_string(),
        attempts: 16,
        reps: 3,
        seed: 20130616,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    let exit_usage = |message: &str| -> ! {
        eprintln!("{message}\n\n{}", usage());
        std::process::exit(2)
    };
    let number = |flag: &str, value: Option<&String>| -> u64 {
        match value.and_then(|v| v.parse().ok()) {
            Some(n) => n,
            None => exit_usage(&format!("option '{flag}' expects a non-negative integer")),
        }
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--problem" => match iter.next() {
                Some(id) => options.problem = id.clone(),
                None => exit_usage("option '--problem' requires a value"),
            },
            "--attempts" => options.attempts = number(arg, iter.next()).max(1) as usize,
            "--reps" => options.reps = number(arg, iter.next()).max(1) as usize,
            "--seed" => options.seed = number(arg, iter.next()),
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => exit_usage(&format!("unknown option '{other}'")),
        }
    }
    options
}

/// ns per span open/close with no trace installed: one TLS read.
fn bench_span_off() -> f64 {
    const N: u64 = 1_000_000;
    let start = Instant::now();
    for _ in 0..N {
        std::hint::black_box(span("bench"));
    }
    start.elapsed().as_nanos() as f64 / N as f64
}

/// ns per span open/close with a trace installed.  Traces are rotated
/// every 256 spans so the measured cost is the steady per-span push, not
/// the growth of one enormous span vector.
fn bench_span_on() -> f64 {
    const N: u64 = 100_000;
    const CHUNK: u64 = 256;
    let start = Instant::now();
    for _ in 0..N / CHUNK {
        let trace = Trace::new();
        let _guard = trace.install();
        for _ in 0..CHUNK {
            std::hint::black_box(span("bench"));
        }
    }
    start.elapsed().as_nanos() as f64 / N as f64
}

/// Grades every submission once; `traced` reproduces the daemon's
/// per-request wiring (fresh trace, install, root span).
fn grade_corpus(grader: &Autograder, sources: &[String], traced: bool) -> Duration {
    let start = Instant::now();
    for source in sources {
        if traced {
            let trace = Trace::new();
            let _guard = trace.install();
            let _root = span("grade");
            std::hint::black_box(grader.grade_source(source));
        } else {
            std::hint::black_box(grader.grade_source(source));
        }
    }
    start.elapsed()
}

fn main() {
    let options = parse_options();
    let Some(problem) = problems::problem(&options.problem) else {
        eprintln!("unknown problem '{}'", options.problem);
        std::process::exit(2);
    };

    let span_off_ns = bench_span_off();
    let span_on_ns = bench_span_on();
    eprintln!("span open/close: {span_off_ns:.1} ns untraced, {span_on_ns:.1} ns traced");

    let spec = CorpusSpec::table1_like(options.attempts, options.seed);
    let corpus = generate_corpus(&problem, &spec);
    let sources: Vec<String> = corpus.into_iter().map(|s| s.source).collect();
    let grader = problem.autograder(GraderConfig::fast());

    // Warm-up primes every lazily-built table (and the metric handles) so
    // neither measured mode pays first-run costs.
    grade_corpus(&grader, &sources, true);

    let mut best_off = Duration::MAX;
    let mut best_on = Duration::MAX;
    for _ in 0..options.reps {
        best_off = best_off.min(grade_corpus(&grader, &sources, false));
        best_on = best_on.min(grade_corpus(&grader, &sources, true));
    }
    let overhead_pct =
        (best_on.as_secs_f64() - best_off.as_secs_f64()) / best_off.as_secs_f64() * 100.0;
    eprintln!(
        "grading {} submissions: {:.2}ms untraced, {:.2}ms traced — {overhead_pct:+.2}% tracing overhead",
        sources.len(),
        best_off.as_secs_f64() * 1e3,
        best_on.as_secs_f64() * 1e3,
    );

    let doc = Json::object([
        ("problem", Json::str(problem.id)),
        ("submissions", sources.len().to_json()),
        ("reps", options.reps.to_json()),
        ("span_ns_untraced", Json::Float(span_off_ns)),
        ("span_ns_traced", Json::Float(span_on_ns)),
        ("grade_ms_untraced", best_off.to_json()),
        ("grade_ms_traced", best_on.to_json()),
        ("tracing_overhead_pct", Json::Float(overhead_pct)),
    ]);
    println!("{doc}");
}
