//! Regenerates **Table 1** of the paper: per-benchmark totals, syntax
//! errors, correct/incorrect split, percentage of incorrect attempts with
//! generated feedback, and average/median grading time.
//!
//! ```text
//! cargo run --release -p afg-bench --bin table1 -- [--attempts N] [--seed S] [--workers N] [--json]
//! ```
//!
//! With `--json` the table is emitted as a single JSON document (via
//! `afg-json`) so CI and scripts can consume the results without scraping
//! the human-formatted text.
//!
//! The corpora are synthetic (see DESIGN.md); absolute counts therefore
//! differ from the paper, but the shape — a majority of incorrect attempts
//! repaired, seconds-per-submission grading times, harder problems
//! (hangman2, iterGCD) taking longer — should match.  Grading runs on the
//! parallel [`afg_core::BatchGrader`] engine; note that the per-submission
//! wall-clock budget means Fixed/Timeout counts can shift slightly with
//! machine load and worker count — pass `--workers 1` for strictly
//! reproducible counts (and undistorted per-submission times).

use afg_bench::{run_problem_on, CliOptions, Table1Row};
use afg_corpus::{problems, CorpusSpec};
use afg_json::{Json, ToJson};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = CliOptions::parse_or_exit(&args, 40);
    let engine = options.engine();
    let (attempts, seed) = (options.attempts, options.seed);

    if !options.json {
        println!("Table 1: attempts corrected and grading time per benchmark");
        println!(
            "(synthetic corpus: {attempts} attempts per benchmark, seed {seed}, {} workers)",
            engine.workers()
        );
        println!();
        println!("{}", Table1Row::header());
    }

    let mut rows = Vec::new();
    let mut total_incorrect = 0usize;
    let mut total_fixed = 0usize;
    for problem in problems::all_problems() {
        let spec = CorpusSpec::table1_like(attempts, seed ^ problem.id.len() as u64);
        let (row, _records, _report) = run_problem_on(
            &problem,
            None,
            &spec,
            afg_bench::experiment_config(),
            &engine,
        );
        if !options.json {
            println!("{}", row.format_row());
        }
        total_incorrect += row.incorrect;
        total_fixed += row.generated_feedback;
        rows.push(row);
    }

    let overall = if total_incorrect == 0 {
        0.0
    } else {
        100.0 * total_fixed as f64 / total_incorrect as f64
    };

    if options.json {
        // Machine-readable mode for CI and scripts: one JSON document on
        // stdout, nothing else.
        let doc = Json::object([
            ("attempts", attempts.to_json()),
            ("seed", seed.to_json()),
            ("workers", engine.workers().to_json()),
            ("rows", rows.to_json()),
            (
                "overall",
                Json::object([
                    ("incorrect", total_incorrect.to_json()),
                    ("generated_feedback", total_fixed.to_json()),
                    ("feedback_percent", overall.to_json()),
                ]),
            ),
        ]);
        println!("{doc}");
    } else {
        println!();
        println!(
            "Overall: {total_fixed}/{total_incorrect} incorrect attempts repaired ({overall:.1}%); the paper reports 64%."
        );
    }
}
