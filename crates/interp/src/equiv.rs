//! Bounded equivalence checking between a student program and the reference
//! implementation.
//!
//! The paper's SKETCH harness "compares the outputs of the translated student
//! and reference implementations on all inputs of a bounded size" (§2.3).
//! [`EquivalenceOracle`] is the enumerative analogue: it precomputes the
//! reference outcome on every bounded input once, then answers
//! counterexample queries for candidate programs.

use afg_ast::types::MpyType;
use afg_ast::Program;
use afg_eml::{ChoiceAssignment, ChoiceProgram};

use crate::choice_eval::ChoiceEvaluator;
use crate::error::RuntimeError;
use crate::inputs::InputSpace;
use crate::interp::{run_function, ExecLimits, Outcome};
use crate::value::Value;

/// The observable behaviour of one program run: either a value plus output,
/// or the kind of error it raised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecResult {
    /// Execution finished normally.
    Ok(Outcome),
    /// Execution raised an error of the given kind (`"IndexError"`, ...).
    Err(&'static str),
}

impl ExecResult {
    /// Runs `program` on `args` and captures the result.
    pub fn observe(
        program: &Program,
        entry: Option<&str>,
        args: &[Value],
        limits: ExecLimits,
    ) -> ExecResult {
        match run_function(program, entry, args, limits) {
            Ok(outcome) => ExecResult::Ok(outcome),
            Err(err) => ExecResult::Err(err.kind()),
        }
    }

    /// Whether this result is a successful execution.
    pub fn is_ok(&self) -> bool {
        matches!(self, ExecResult::Ok(_))
    }

    /// Whether a student result matches a reference result.
    ///
    /// Behavioural match means: the student run succeeds, returns a value
    /// that is Python-equal to the reference value and, when
    /// `compare_output` is set, prints the same lines.
    pub fn matches(&self, reference: &ExecResult, compare_output: bool) -> bool {
        match (self, reference) {
            (ExecResult::Ok(student), ExecResult::Ok(reference)) => {
                student.value.py_eq(&reference.value)
                    && (!compare_output || student.output == reference.output)
            }
            // A reference error means the input is outside the reference's
            // domain; such inputs never count against the student.
            (_, ExecResult::Err(_)) => true,
            (ExecResult::Err(_), ExecResult::Ok(_)) => false,
        }
    }
}

/// Configuration of the equivalence check.
#[derive(Debug, Clone)]
pub struct EquivalenceConfig {
    /// Bounded input space.
    pub space: InputSpace,
    /// Per-run resource limits.
    pub limits: ExecLimits,
    /// Name of the graded function (entry point).
    pub entry: Option<String>,
    /// Whether printed output is part of the observable behaviour
    /// (only the stdin/print style problems set this).
    pub compare_output: bool,
}

impl Default for EquivalenceConfig {
    fn default() -> EquivalenceConfig {
        EquivalenceConfig {
            space: InputSpace::default(),
            limits: ExecLimits::fast(),
            entry: None,
            compare_output: false,
        }
    }
}

/// A reusable oracle answering "does this candidate behave like the
/// reference on every bounded input?".
#[derive(Debug, Clone)]
pub struct EquivalenceOracle {
    inputs: Vec<Vec<Value>>,
    reference_results: Vec<ExecResult>,
    config: EquivalenceConfig,
}

impl EquivalenceOracle {
    /// Builds an oracle for a reference implementation whose parameters have
    /// the given declared types.
    ///
    /// The reference is run once on every input of the bounded space and the
    /// results are cached.
    pub fn new(
        reference: &Program,
        param_types: &[MpyType],
        config: EquivalenceConfig,
    ) -> EquivalenceOracle {
        let inputs = config.space.enumerate_args(param_types);
        let reference_results = inputs
            .iter()
            .map(|args| {
                ExecResult::observe(reference, config.entry.as_deref(), args, config.limits)
            })
            .collect();
        EquivalenceOracle {
            inputs,
            reference_results,
            config,
        }
    }

    /// Builds an oracle, reading the parameter types from the reference
    /// program's entry function (the paper's name-suffix convention).
    pub fn from_reference(reference: &Program, config: EquivalenceConfig) -> EquivalenceOracle {
        let param_types: Vec<MpyType> = reference
            .entry(config.entry.as_deref())
            .map(|f| f.params.iter().map(|p| p.ty.clone()).collect())
            .unwrap_or_default();
        EquivalenceOracle::new(reference, &param_types, config)
    }

    /// The bounded inputs the oracle checks, in order.
    pub fn inputs(&self) -> &[Vec<Value>] {
        &self.inputs
    }

    /// The cached reference result for input `index`.
    pub fn reference_result(&self, index: usize) -> &ExecResult {
        &self.reference_results[index]
    }

    /// Number of inputs on which the reference executes successfully.
    pub fn valid_input_count(&self) -> usize {
        self.reference_results.iter().filter(|r| r.is_ok()).count()
    }

    /// Checks the candidate on a single input, by index.
    pub fn check_input(&self, candidate: &Program, index: usize) -> bool {
        let result = ExecResult::observe(
            candidate,
            self.config.entry.as_deref(),
            &self.inputs[index],
            self.config.limits,
        );
        result.matches(&self.reference_results[index], self.config.compare_output)
    }

    /// Finds the first input on which the candidate disagrees with the
    /// reference, or `None` if the candidate is equivalent on the whole
    /// bounded space.
    pub fn find_counterexample(&self, candidate: &Program) -> Option<usize> {
        (0..self.inputs.len()).find(|&i| !self.check_input(candidate, i))
    }

    /// Whether the candidate is equivalent to the reference on the bounded
    /// space.
    pub fn is_equivalent(&self, candidate: &Program) -> bool {
        self.find_counterexample(candidate).is_none()
    }

    /// Runs the candidate on an explicit list of input indices (the CEGIS
    /// counterexample set) and reports whether it agrees on all of them.
    pub fn agrees_on(&self, candidate: &Program, indices: &[usize]) -> bool {
        indices.iter().all(|&i| self.check_input(candidate, i))
    }

    /// Opens a choice-aware verification session for one candidate space.
    ///
    /// The session evaluates candidates by walking the shared choice AST
    /// under a [`ChoiceAssignment`] — no per-candidate program is ever
    /// materialised.  This is the oracle API the synthesis back ends use in
    /// their hot loop; [`ChoiceProgram::concretize`] remains the cold path
    /// for rendering the final repaired program.
    pub fn choice_session<'a>(&'a self, program: &'a ChoiceProgram) -> ChoiceSession<'a> {
        ChoiceSession {
            oracle: self,
            evaluator: ChoiceEvaluator::new(program, self.config.limits),
        }
    }
}

/// A verification session over one candidate space (one transformed
/// submission), bound to the oracle's cached reference results.
#[derive(Debug, Clone)]
pub struct ChoiceSession<'a> {
    oracle: &'a EquivalenceOracle,
    evaluator: ChoiceEvaluator<'a>,
}

impl<'a> ChoiceSession<'a> {
    /// The underlying oracle.
    pub fn oracle(&self) -> &'a EquivalenceOracle {
        self.oracle
    }

    /// Runs the candidate selected by `assignment` on one input and captures
    /// the result.
    pub fn observe(&self, assignment: &ChoiceAssignment, index: usize) -> ExecResult {
        match self.evaluator.run(assignment, &self.oracle.inputs[index]) {
            Ok(outcome) => ExecResult::Ok(outcome),
            Err(err) => ExecResult::Err(err.kind()),
        }
    }

    /// Checks the candidate on a single input, by index.
    pub fn check_input(&self, assignment: &ChoiceAssignment, index: usize) -> bool {
        self.observe(assignment, index).matches(
            &self.oracle.reference_results[index],
            self.oracle.config.compare_output,
        )
    }

    /// Runs the candidate on an explicit list of input indices (the CEGIS
    /// counterexample set) and reports whether it agrees on all of them.
    pub fn agrees_on(&self, assignment: &ChoiceAssignment, indices: &[usize]) -> bool {
        indices.iter().all(|&i| self.check_input(assignment, i))
    }

    /// Finds the first input on which the candidate disagrees with the
    /// reference, checking `priority` indices (the accumulated CEGIS
    /// counterexamples) *first*.
    ///
    /// Counterexample-first ordering pays off twice: almost every candidate
    /// the solver proposes fails on an input that already killed an earlier
    /// candidate, so the common case rejects after a handful of runs instead
    /// of a sweep — and when the candidate survives the priority set, the
    /// remaining sweep skips the indices it already checked.
    pub fn find_counterexample(
        &self,
        assignment: &ChoiceAssignment,
        priority: &[usize],
    ) -> Option<usize> {
        for &index in priority {
            if !self.check_input(assignment, index) {
                return Some(index);
            }
        }
        let total = self.oracle.inputs.len();
        if priority.is_empty() {
            return (0..total).find(|&i| !self.check_input(assignment, i));
        }
        // Mark the already-checked indices once instead of scanning the
        // priority list per input — with warm starts pre-seeding whole
        // counterexample sets, that scan would make every surviving
        // sweep O(|inputs| · |priority|).
        let mut already_checked = vec![false; total];
        for &index in priority {
            if index < total {
                already_checked[index] = true;
            }
        }
        (0..total)
            .filter(|&i| !already_checked[i])
            .find(|&i| !self.check_input(assignment, i))
    }

    /// Whether the candidate is equivalent to the reference on the whole
    /// bounded space.
    pub fn is_equivalent(&self, assignment: &ChoiceAssignment) -> bool {
        self.find_counterexample(assignment, &[]).is_none()
    }
}

/// Classification of a submission against the reference, used when building
/// the experiment corpus (Table 1's Correct / Incorrect split).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Behaviourally equivalent to the reference on the bounded space.
    Correct,
    /// Differs from the reference on at least one bounded input.
    Incorrect,
}

/// Classifies a parsed submission as correct or incorrect.
pub fn classify(oracle: &EquivalenceOracle, submission: &Program) -> Verdict {
    if oracle.is_equivalent(submission) {
        Verdict::Correct
    } else {
        Verdict::Incorrect
    }
}

/// Convenience helper: runs both programs on one input and reports whether
/// the student matches the reference there.
pub fn agree_on_input(
    reference: &Program,
    student: &Program,
    entry: Option<&str>,
    args: &[Value],
    limits: ExecLimits,
    compare_output: bool,
) -> Result<bool, RuntimeError> {
    let reference_result = ExecResult::observe(reference, entry, args, limits);
    let student_result = ExecResult::observe(student, entry, args, limits);
    Ok(student_result.matches(&reference_result, compare_output))
}

#[cfg(test)]
mod tests {
    use super::*;
    use afg_parser::parse_program;

    const REFERENCE: &str = "\
def computeDeriv(poly_list_int):
    result = []
    for i in range(len(poly_list_int)):
        result += [i * poly_list_int[i]]
    if len(poly_list_int) == 1:
        return result
    else:
        return result[1:]
";

    // Correct alternative algorithm (builds the result with append).
    const CORRECT_VARIANT: &str = "\
def computeDeriv(poly):
    if len(poly) == 1:
        return [0]
    deriv = []
    for i in range(1, len(poly)):
        deriv.append(i * poly[i])
    return deriv
";

    // Figure 2(a): misses the [0] base case and iterates from 0.
    const INCORRECT: &str = "\
def computeDeriv(poly):
    deriv = []
    zero = 0
    if (len(poly) == 1):
        return deriv
    for e in range(0, len(poly)):
        if (poly[e] == 0):
            zero += 1
        else:
            deriv.append(poly[e]*e)
    return deriv
";

    fn oracle() -> EquivalenceOracle {
        let reference = parse_program(REFERENCE).unwrap();
        let config = EquivalenceConfig {
            entry: Some("computeDeriv".to_string()),
            ..EquivalenceConfig::default()
        };
        EquivalenceOracle::from_reference(&reference, config)
    }

    #[test]
    fn reference_is_equivalent_to_itself() {
        let oracle = oracle();
        let reference = parse_program(REFERENCE).unwrap();
        assert!(oracle.is_equivalent(&reference));
        assert!(oracle.valid_input_count() > 10);
    }

    #[test]
    fn note_single_element_semantics_of_reference() {
        // The paper's reference returns `result` (which is [0 * poly[0]]) for
        // singleton lists, i.e. [0] — the variant must agree.
        let oracle = oracle();
        let variant = parse_program(CORRECT_VARIANT).unwrap();
        assert!(oracle.is_equivalent(&variant));
    }

    #[test]
    fn incorrect_submission_yields_small_counterexample() {
        let oracle = oracle();
        let student = parse_program(INCORRECT).unwrap();
        let cex = oracle.find_counterexample(&student).expect("should differ");
        // The first differing input should be small — a list of length <= 2.
        match &oracle.inputs()[cex][0] {
            Value::List(items) => assert!(items.len() <= 2),
            other => panic!("unexpected input {other:?}"),
        }
        assert_eq!(classify(&oracle, &student), Verdict::Incorrect);
    }

    #[test]
    fn exec_results_match_semantics() {
        let ok = ExecResult::Ok(Outcome {
            value: Value::Int(1),
            output: vec![],
        });
        let ok_same = ExecResult::Ok(Outcome {
            value: Value::Int(1),
            output: vec!["x".into()],
        });
        let err = ExecResult::Err("IndexError");
        assert!(ok_same.matches(&ok, false));
        assert!(!ok_same.matches(&ok, true));
        assert!(!err.matches(&ok, false));
        // Inputs where the reference errors never count against the student.
        assert!(ok.matches(&err, false));
        assert!(err.matches(&err, false));
    }

    #[test]
    fn agrees_on_subset_of_inputs() {
        let oracle = oracle();
        let student = parse_program(INCORRECT).unwrap();
        let cex = oracle.find_counterexample(&student).unwrap();
        assert!(!oracle.agrees_on(&student, &[cex]));
        // The empty counterexample set is vacuously satisfied.
        assert!(oracle.agrees_on(&student, &[]));
    }

    #[test]
    fn agree_on_single_input_helper() {
        let reference = parse_program(REFERENCE).unwrap();
        let student = parse_program(INCORRECT).unwrap();
        let args = vec![Value::int_list([7])];
        let same = agree_on_input(
            &reference,
            &student,
            Some("computeDeriv"),
            &args,
            ExecLimits::fast(),
            false,
        )
        .unwrap();
        // Reference returns [0], the student returns [] — they disagree.
        assert!(!same);
    }
}
