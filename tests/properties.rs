//! Cross-crate property-based tests of the pipeline's core invariants.
//!
//! The workspace carries no external dependencies, so instead of a proptest
//! shrinker these are exhaustive sweeps over seeded inputs — every case is
//! deterministic and a failure message names the seed that produced it.

use autofeedback::corpus::rng::StdRng;
use autofeedback::corpus::{mutate_program, problems};
use autofeedback::eml::{apply_error_model, ChoiceAssignment};
use autofeedback::interp::{EquivalenceConfig, EquivalenceOracle};
use autofeedback::parser::parse_program;

/// Pretty-printing any mutated benchmark solution and re-parsing it is a
/// fixed point: parse(print(p)) prints identically.
#[test]
fn mutated_programs_round_trip_through_the_printer() {
    let problem = problems::compute_deriv();
    for seed in 0..60u64 {
        let mutations = 1 + (seed as usize % 3);
        let mut program = parse_program(problem.reference).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        mutate_program(&mut program, mutations, &mut rng);
        let printed = autofeedback::ast::pretty::program_to_string(&program);
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("seed {seed}: printed program parses: {e}\n{printed}"));
        assert_eq!(
            printed,
            autofeedback::ast::pretty::program_to_string(&reparsed),
            "seed {seed}: printer round trip"
        );
    }
}

/// The error-model transformation is *conservative*: with every choice at
/// its default, the concretised program behaves exactly like the input
/// program on the bounded input space.
#[test]
fn default_concretisation_preserves_behaviour() {
    let problem = problems::compute_deriv();
    for seed in 0..24u64 {
        let mut student = parse_program(problem.reference).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        mutate_program(&mut student, 2, &mut rng);

        let choices = apply_error_model(&student, Some(problem.entry), &problem.model).unwrap();
        let roundtrip = choices.original_program();

        // Build an oracle whose "reference" is the (possibly broken) student
        // program itself: the default concretisation must be equivalent to it.
        let oracle = EquivalenceOracle::from_reference(
            &parse_with_types(&student, problem.reference, problem.entry),
            EquivalenceConfig {
                entry: Some(problem.entry.to_string()),
                ..EquivalenceConfig::default()
            },
        );
        assert!(
            oracle.is_equivalent(&roundtrip),
            "seed {seed}: default concretisation drifted"
        );
    }
}

/// The fingerprint cache's guard rail: `pretty-print → parse → canonical
/// hash` is a fixpoint for every benchmark problem's reference, correct
/// variants and conceptual mutants, and across a seeded mutant sweep.  If
/// the parser or the printer ever drift apart (a normalisation one does
/// and the other undoes), an identical resubmission would stop hitting the
/// cache — this test turns that silent performance regression into a
/// loud failure.
#[test]
fn canonical_fingerprint_survives_a_print_parse_round_trip() {
    use autofeedback::ast::canon::{canonical_source, canonicalize, fingerprint64};
    use autofeedback::ast::pretty::program_to_string;

    let check = |program: &autofeedback::ast::Program, context: &str| {
        let printed = program_to_string(program);
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("{context}: printed program parses: {e}\n{printed}"));
        assert_eq!(
            fingerprint64(program),
            fingerprint64(&reparsed),
            "{context}: fingerprint must survive print→parse\n{printed}"
        );
        // Canonicalisation is idempotent: hashing the canonical form again
        // changes nothing.
        assert_eq!(
            canonical_source(program),
            canonical_source(&canonicalize(program)),
            "{context}: canonicalisation must be idempotent"
        );
    };

    for problem in problems::all_problems() {
        let mut fixed_sources = problem.mutation_seeds();
        fixed_sources.extend(problem.conceptual_mutants.iter().copied());
        for (i, source) in fixed_sources.iter().enumerate() {
            let program = parse_program(source).expect("corpus sources parse");
            check(&program, &format!("{} source {i}", problem.id));
        }

        // Seeded mutant sweep: 1–3 injected mistakes per seed.
        for seed in 0..12u64 {
            let mut program = parse_program(problem.reference).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            mutate_program(&mut program, 1 + (seed as usize % 3), &mut rng);
            check(&program, &format!("{} mutant seed {seed}", problem.id));
        }
    }
}

/// The cluster index's guard rail, the skeleton analogue of the canonical
/// fixpoint above: `pretty-print → parse → skeleton fingerprint` is a
/// fixpoint over every corpus problem (reference, correct variants,
/// conceptual mutants and a seeded mutant sweep) — if the printer and
/// parser drifted, skeleton-mates would silently stop clustering.
#[test]
fn skeleton_fingerprint_survives_a_print_parse_round_trip() {
    use autofeedback::ast::canon::{skeleton_fingerprint64, skeleton_source, skeletonize};
    use autofeedback::ast::pretty::program_to_string;

    let check = |program: &autofeedback::ast::Program, context: &str| {
        let printed = program_to_string(program);
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("{context}: printed program parses: {e}\n{printed}"));
        assert_eq!(
            skeleton_fingerprint64(program),
            skeleton_fingerprint64(&reparsed),
            "{context}: skeleton fingerprint must survive print→parse\n{printed}"
        );
        // Skeletonisation is idempotent.
        assert_eq!(
            skeleton_source(program),
            skeleton_source(&skeletonize(program)),
            "{context}: skeletonisation must be idempotent"
        );
    };

    for problem in problems::all_problems() {
        let mut fixed_sources = problem.mutation_seeds();
        fixed_sources.extend(problem.conceptual_mutants.iter().copied());
        for (i, source) in fixed_sources.iter().enumerate() {
            let program = parse_program(source).expect("corpus sources parse");
            check(&program, &format!("{} source {i}", problem.id));
        }
        for seed in 0..12u64 {
            let mut program = parse_program(problem.reference).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            mutate_program(&mut program, 1 + (seed as usize % 3), &mut rng);
            check(&program, &format!("{} mutant seed {seed}", problem.id));
        }
    }
}

/// Skeleton invariance: alpha-renaming every variable AND perturbing every
/// integer constant leaves the skeleton fingerprint unchanged (that is the
/// clustering contract), while the *canonical* fingerprint keeps the
/// constant-perturbed variant distinct (that is the cache's contract).
#[test]
fn skeleton_is_invariant_under_renaming_and_constant_perturbation() {
    use autofeedback::ast::canon::{canonicalize, fingerprint64, skeleton_fingerprint64};
    use autofeedback::ast::visit::map_exprs_in_stmts;
    use autofeedback::ast::Expr;

    for problem in problems::all_problems() {
        for (i, source) in problem.mutation_seeds().iter().enumerate() {
            let program = parse_program(source).expect("corpus sources parse");

            // Alpha-renaming: canonicalize() IS a renaming of every
            // variable, so it must preserve both fingerprints.
            let renamed = canonicalize(&program);
            assert_eq!(
                fingerprint64(&program),
                fingerprint64(&renamed),
                "{} source {i}: canonical fingerprint is alpha-invariant",
                problem.id
            );
            assert_eq!(
                skeleton_fingerprint64(&program),
                skeleton_fingerprint64(&renamed),
                "{} source {i}: skeleton fingerprint is alpha-invariant",
                problem.id
            );

            // Constant perturbation: shifts every integer literal, which
            // changes the canonical form (when the program has any
            // integer literal) but never the skeleton.
            for delta in [1, -3, 40] {
                let mut perturbed = program.clone();
                let mut perturb = |e: Expr| match e {
                    Expr::Int(v) => Expr::Int(v.wrapping_add(delta)),
                    other => other,
                };
                for func in &mut perturbed.funcs {
                    map_exprs_in_stmts(&mut func.body, &mut perturb);
                }
                assert_eq!(
                    skeleton_fingerprint64(&program),
                    skeleton_fingerprint64(&perturbed),
                    "{} source {i} delta {delta}: skeleton ignores constants",
                    problem.id
                );
                if perturbed != program {
                    assert_ne!(
                        fingerprint64(&program),
                        fingerprint64(&perturbed),
                        "{} source {i} delta {delta}: canonical form must \
                         still distinguish the constants",
                        problem.id
                    );
                }
            }
        }
    }
}

/// Cost accounting: the cost of an assignment equals the number of
/// non-default selections, and concretising the same assignment twice is
/// deterministic.
#[test]
fn assignment_cost_counts_non_default_choices() {
    let problem = problems::compute_deriv();
    let student = parse_program(problem.correct_variants[0]).unwrap();
    let choices = apply_error_model(&student, Some(problem.entry), &problem.model).unwrap();

    for seed in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut assignment = ChoiceAssignment::default_choices();
        let mut expected_cost = 0;
        for info in &choices.choices {
            if rng.gen_bool(0.5) && info.options.len() > 1 {
                assignment.select(info.id, 1);
                expected_cost += 1;
            }
        }
        assert_eq!(assignment.cost(), expected_cost, "seed {seed}");
        assert_eq!(
            choices.concretize(&assignment),
            choices.concretize(&assignment),
            "seed {seed}: concretisation must be deterministic"
        );
    }
}

/// The zero-materialisation refactor's differential property: evaluating a
/// candidate by walking the choice AST under an assignment agrees with
/// concretising the assignment and interpreting the resulting program — for
/// every benchmark problem, across default, single-choice and random
/// multi-choice assignments, on the oracle's bounded inputs.
#[test]
fn choice_evaluation_agrees_with_concretisation_on_corpus_problems() {
    use autofeedback::core::GraderConfig;
    use autofeedback::interp::{ChoiceEvaluator, ExecLimits};

    let limits = ExecLimits::fast();
    for problem in problems::all_problems() {
        let grader = problem.autograder(GraderConfig::fast());
        let inputs = grader.oracle().inputs();
        for variant in problem.correct_variants.iter().take(2) {
            let student = parse_program(variant).expect("corpus variants parse");
            let Ok(choices) = apply_error_model(&student, Some(problem.entry), &problem.model)
            else {
                continue;
            };

            // Default, every single non-default selection, plus seeded
            // random multi-choice assignments.
            let mut assignments = vec![ChoiceAssignment::default_choices()];
            for info in &choices.choices {
                for option in 1..info.options.len() {
                    assignments.push(ChoiceAssignment::from_pairs([(info.id, option)]));
                }
            }
            let mut rng = StdRng::seed_from_u64(problem.id.len() as u64);
            for _ in 0..8 {
                let mut assignment = ChoiceAssignment::default_choices();
                for info in &choices.choices {
                    if info.options.len() > 1 && rng.gen_bool(0.3) {
                        assignment.select(info.id, rng.gen_range(1..info.options.len()));
                    }
                }
                assignments.push(assignment);
            }

            let evaluator = ChoiceEvaluator::new(&choices, limits);
            for (which, assignment) in assignments.iter().enumerate().take(24) {
                let concrete = choices.concretize(assignment);
                // Sample the bounded input space: small spaces are swept
                // exhaustively, large ones by stride, touching short and
                // long inputs alike.
                let stride = (inputs.len() / 64).max(1);
                for args in inputs.iter().step_by(stride) {
                    let direct = evaluator.run(assignment, args);
                    let materialised = autofeedback::interp::run_function(
                        &concrete,
                        Some(problem.entry),
                        args,
                        limits,
                    );
                    match (&direct, &materialised) {
                        (Ok(a), Ok(b)) => assert_eq!(
                            a, b,
                            "{}: assignment #{which} diverged on {args:?}",
                            problem.id
                        ),
                        (Err(a), Err(b)) => assert_eq!(
                            a.kind(),
                            b.kind(),
                            "{}: assignment #{which} error kinds diverged on {args:?}",
                            problem.id
                        ),
                        _ => panic!(
                            "{}: assignment #{which} diverged on {args:?}: {direct:?} vs {materialised:?}",
                            problem.id
                        ),
                    }
                }
            }
        }
    }
}

/// The student program keeps its own parameter names, but the declared types
/// live on the reference; borrow them so the oracle enumerates the same
/// input space for both.
fn parse_with_types(
    student: &autofeedback::ast::Program,
    reference_source: &str,
    entry: &str,
) -> autofeedback::ast::Program {
    let reference = parse_program(reference_source).unwrap();
    let mut student = student.clone();
    if let (Some(student_func), Some(reference_func)) =
        (student.funcs.first_mut(), reference.entry(Some(entry)))
    {
        for (param, reference_param) in student_func
            .params
            .iter_mut()
            .zip(reference_func.params.iter())
        {
            param.ty = reference_param.ty.clone();
        }
    }
    student
}
