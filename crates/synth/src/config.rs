//! Configuration, results and statistics shared by the synthesis back ends.

use std::time::Duration;

use afg_eml::ChoiceAssignment;

/// Resource budget and search bounds for one synthesis run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthesisConfig {
    /// Upper bound on the number of corrections considered (candidates with
    /// more non-default choices than this are never explored).
    pub max_cost: usize,
    /// Upper bound on the number of candidate programs interpreted.
    pub max_candidates: usize,
    /// Wall-clock budget for one submission (the paper uses a 4-minute
    /// timeout on a 16-core Xeon; our default is much smaller because the
    /// enumerative oracle is cheaper per query).
    pub time_budget: Duration,
}

impl Default for SynthesisConfig {
    fn default() -> SynthesisConfig {
        SynthesisConfig {
            max_cost: 4,
            max_candidates: 50_000,
            time_budget: Duration::from_secs(10),
        }
    }
}

impl SynthesisConfig {
    /// A tight budget for unit tests.
    pub fn fast() -> SynthesisConfig {
        SynthesisConfig {
            max_cost: 3,
            max_candidates: 5_000,
            time_budget: Duration::from_secs(3),
        }
    }
}

/// Counters describing how hard the synthesizer had to work.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SynthesisStats {
    /// Candidate programs concretised and interpreted.
    pub candidates_checked: usize,
    /// CEGIS iterations (synthesis-phase / verification-phase round trips).
    pub cegis_iterations: usize,
    /// Counterexample inputs accumulated.
    pub counterexamples: usize,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

/// A repair found by the synthesizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    /// The minimal-cost choice assignment that makes the submission
    /// equivalent to the reference on the bounded input space.
    pub assignment: ChoiceAssignment,
    /// Number of corrections (`totalCost` in the paper).
    pub cost: usize,
    /// Search statistics.
    pub stats: SynthesisStats,
}

/// The overall outcome of grading one submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthesisOutcome {
    /// The submission is already equivalent to the reference.
    AlreadyCorrect,
    /// A minimal set of corrections was found.
    Fixed(Solution),
    /// The error model cannot repair this submission (the search space was
    /// exhausted) — the paper's "cannot be fixed" outcome.
    NoRepairFound(SynthesisStats),
    /// The search hit its time or candidate budget before finishing.
    Timeout(SynthesisStats),
}

impl SynthesisOutcome {
    /// The solution, if the submission was fixed.
    pub fn solution(&self) -> Option<&Solution> {
        match self {
            SynthesisOutcome::Fixed(solution) => Some(solution),
            _ => None,
        }
    }

    /// Whether feedback can be generated from this outcome (the submission
    /// was either already correct or fixable).
    pub fn is_success(&self) -> bool {
        matches!(
            self,
            SynthesisOutcome::AlreadyCorrect | SynthesisOutcome::Fixed(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_reasonable() {
        let config = SynthesisConfig::default();
        assert!(
            config.max_cost >= 3,
            "the paper needs up to 4 coordinated corrections"
        );
        assert!(config.time_budget > Duration::from_secs(1));
        assert!(SynthesisConfig::fast().max_candidates < config.max_candidates);
    }

    #[test]
    fn outcome_accessors() {
        let stats = SynthesisStats::default();
        assert!(SynthesisOutcome::AlreadyCorrect.is_success());
        assert!(!SynthesisOutcome::NoRepairFound(stats.clone()).is_success());
        assert!(SynthesisOutcome::Timeout(stats).solution().is_none());
        let solution = Solution {
            assignment: ChoiceAssignment::default_choices(),
            cost: 0,
            stats: SynthesisStats::default(),
        };
        assert_eq!(
            SynthesisOutcome::Fixed(solution.clone()).solution(),
            Some(&solution)
        );
    }
}
