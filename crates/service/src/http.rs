//! A minimal HTTP/1.1 layer over `std::net::TcpStream`.
//!
//! Only what the grading API needs: request-line + header parsing,
//! `Content-Length` bodies, keep-alive, and fixed-size limits so a hostile
//! peer cannot balloon memory.  No chunked encoding, no TLS, no
//! compression — the daemon is meant to sit behind a real edge proxy.

use std::io::{self, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest accepted request body (a submission corpus for batch grading).
pub const MAX_BODY: usize = 8 * 1024 * 1024;
/// Largest accepted header section.
const MAX_HEADER_LINE: usize = 8 * 1024;
const MAX_HEADERS: usize = 100;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// The path component, query string stripped.
    pub path: String,
    /// `HTTP/1.0` or `HTTP/1.1`.
    pub version: String,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The raw body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after the response.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection").map(str::to_ascii_lowercase) {
            Some(v) if v.contains("close") => false,
            Some(v) if v.contains("keep-alive") => true,
            _ => self.version == "HTTP/1.1",
        }
    }
}

/// Why reading a request stopped.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// The bytes on the wire are not HTTP (connection must be dropped).
    Malformed(String),
    /// The request exceeds a size limit (respond 413, then drop).
    TooLarge,
    /// An I/O error or read timeout.  The error itself is carried for
    /// `Debug` rendering in tests; the server treats every I/O failure the
    /// same way (drop the connection).
    Io(#[allow(dead_code)] io::Error),
}

/// Reads one request from the stream.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> ReadOutcome {
    let mut line = String::new();
    match read_limited_line(reader, &mut line) {
        Ok(0) => return ReadOutcome::Closed,
        Ok(_) => {}
        Err(LineError::TooLong) => return ReadOutcome::TooLarge,
        Err(LineError::Io(err)) => return ReadOutcome::Io(err),
    }
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return ReadOutcome::Malformed(format!("bad request line: {line:?}"));
    };
    if !version.starts_with("HTTP/") {
        return ReadOutcome::Malformed(format!("bad version: {version:?}"));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();
    let mut request = Request {
        method: method.to_ascii_uppercase(),
        path,
        version: version.to_string(),
        headers: Vec::new(),
        body: Vec::new(),
    };

    loop {
        line.clear();
        match read_limited_line(reader, &mut line) {
            Ok(0) => return ReadOutcome::Malformed("eof inside headers".into()),
            Ok(_) => {}
            Err(LineError::TooLong) => return ReadOutcome::TooLarge,
            Err(LineError::Io(err)) => return ReadOutcome::Io(err),
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if request.headers.len() >= MAX_HEADERS {
            return ReadOutcome::TooLarge;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return ReadOutcome::Malformed(format!("bad header: {trimmed:?}"));
        };
        request
            .headers
            .push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    // No chunked-body support: treating an unread chunked body as "length
    // 0" would let its payload be parsed as the *next* request on this
    // keep-alive connection (request smuggling) — reject instead.
    if request.header("transfer-encoding").is_some() {
        return ReadOutcome::Malformed("transfer-encoding is not supported".into());
    }
    let content_length = match request.header("content-length") {
        None => 0,
        Some(value) => match value.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return ReadOutcome::Malformed(format!("bad content-length: {value:?}")),
        },
    };
    if content_length > MAX_BODY {
        return ReadOutcome::TooLarge;
    }
    request.body = vec![0; content_length];
    if let Err(err) = reader.read_exact(&mut request.body) {
        return ReadOutcome::Io(err);
    }
    ReadOutcome::Request(request)
}

enum LineError {
    TooLong,
    Io(io::Error),
}

/// `read_line` with a hard cap, so an endless unterminated line cannot
/// balloon memory.
fn read_limited_line(
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
) -> Result<usize, LineError> {
    let mut bytes = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => {
                bytes.push(byte[0]);
                if byte[0] == b'\n' {
                    break;
                }
                if bytes.len() > MAX_HEADER_LINE {
                    return Err(LineError::TooLong);
                }
            }
            Err(err) => return Err(LineError::Io(err)),
        }
    }
    match String::from_utf8(bytes) {
        Ok(text) => {
            let len = text.len();
            line.push_str(&text);
            Ok(len)
        }
        Err(_) => Err(LineError::Io(io::Error::new(
            io::ErrorKind::InvalidData,
            "non-UTF-8 header bytes",
        ))),
    }
}

/// Writes one `application/json` response.
///
/// Header and body go out in a single `write_all` — two small writes on a
/// socket without `TCP_NODELAY` interact with Nagle + delayed ACK into
/// ~40 ms stalls, which would dwarf a cache-hit grading time.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    write_response_with(stream, status, "application/json", &[], body, keep_alive)
}

/// [`write_response`] with an explicit content type and extra headers —
/// for `/metrics` (Prometheus text) and the `X-Afg-Trace-Id` grade
/// header.  Same single-`write_all` discipline.
pub fn write_response_with(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let reason = reason_phrase(status);
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut response = format!(
        "HTTP/1.1 {status} {reason}\r\n\
         Content-Type: {content_type}\r\n\
         Content-Length: {}\r\n\
         Connection: {connection}\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        response.push_str(name);
        response.push_str(": ");
        response.push_str(value);
        response.push_str("\r\n");
    }
    response.push_str("\r\n");
    response.push_str(body);
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    /// Feeds raw bytes to `read_request` through a real socket pair.
    fn parse_raw(raw: &'static [u8]) -> ReadOutcome {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(raw).unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        let outcome = read_request(&mut BufReader::new(stream));
        writer.join().unwrap();
        outcome
    }

    #[test]
    fn parses_a_post_with_body() {
        let outcome = parse_raw(
            b"POST /problems/x/grade?verbose=1 HTTP/1.1\r\n\
              Host: localhost\r\n\
              Content-Length: 4\r\n\
              \r\n\
              {\"a\"",
        );
        let ReadOutcome::Request(request) = outcome else {
            panic!("expected request, got {outcome:?}");
        };
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/problems/x/grade");
        assert_eq!(request.body, b"{\"a\"");
        assert_eq!(request.header("host"), Some("localhost"));
        assert!(request.keep_alive());
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let outcome = parse_raw(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        let ReadOutcome::Request(request) = outcome else {
            panic!("{outcome:?}")
        };
        assert!(!request.keep_alive());
        let outcome = parse_raw(b"GET /healthz HTTP/1.0\r\n\r\n");
        let ReadOutcome::Request(request) = outcome else {
            panic!("{outcome:?}")
        };
        assert!(!request.keep_alive());
    }

    #[test]
    fn clean_eof_reports_closed_and_garbage_reports_malformed() {
        assert!(matches!(parse_raw(b""), ReadOutcome::Closed));
        assert!(matches!(
            parse_raw(b"nonsense\r\n\r\n"),
            ReadOutcome::Malformed(_)
        ));
        assert!(matches!(
            parse_raw(b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            ReadOutcome::Malformed(_)
        ));
    }

    #[test]
    fn oversized_bodies_are_rejected_without_allocation() {
        let outcome = parse_raw(b"POST / HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n");
        assert!(matches!(outcome, ReadOutcome::TooLarge));
    }

    #[test]
    fn chunked_bodies_are_rejected_not_smuggled() {
        // Without this rejection the chunk lines would be parsed as a
        // second request on the keep-alive connection.
        let outcome = parse_raw(
            b"POST /problems HTTP/1.1\r\n\
              Transfer-Encoding: chunked\r\n\
              \r\n\
              5\r\nhello\r\n0\r\n\r\n",
        );
        assert!(matches!(outcome, ReadOutcome::Malformed(_)), "{outcome:?}");
    }
}
