//! Enumerative branch-and-bound back end.
//!
//! The paper contrasts its symbolic search with brute-force enumeration
//! (§7.4: "[3] uses brute-force search").  This back end explores candidate
//! assignments in order of increasing cost (number of corrections), using
//! the accumulated counterexamples as a cheap filter before each full
//! verification — so the first equivalent candidate it finds is minimal.
//! It serves as the ablation baseline for the SAT-backed CEGIS solver and as
//! an independent check that both agree on minimal costs.

use std::time::Instant;

use afg_eml::{ChoiceAssignment, ChoiceProgram};
use afg_interp::{ChoiceSession, EquivalenceOracle};

use crate::bitset::IndexBitset;
use crate::config::{Solution, SynthesisConfig, SynthesisOutcome, SynthesisStats};
use crate::strategy::{CancelToken, SearchStrategy};

/// Copies the session's verification-work counters into the final report
/// and attaches the verification share to the current trace (if any).
fn harvest_sweeps(stats: &mut SynthesisStats, session: &ChoiceSession) {
    let sweep = session.sweep_stats();
    stats.sweeps = sweep.sweeps;
    stats.sweep_inputs = sweep.inputs_run;
    stats.sweep_compiled = sweep.compiled;
    stats.sweep_cache_hits = sweep.cache_hits;
    stats.sweep_cache_nodes = sweep.cache_nodes;
    afg_obs::record_span("verify", stats.verify_elapsed);
}

/// The enumerative synthesizer.
#[derive(Debug, Clone, Default)]
pub struct EnumerativeSolver;

impl EnumerativeSolver {
    /// Creates a solver.
    pub fn new() -> EnumerativeSolver {
        EnumerativeSolver
    }
}

impl SearchStrategy for EnumerativeSolver {
    fn name(&self) -> &'static str {
        "enum"
    }

    /// Searches candidates in order of increasing correction count.
    fn synthesize_with(
        &self,
        program: &ChoiceProgram,
        oracle: &EquivalenceOracle,
        config: &SynthesisConfig,
        cancel: &CancelToken,
    ) -> SynthesisOutcome {
        let start = Instant::now();
        let mut stats = SynthesisStats {
            strategy: self.name(),
            ..SynthesisStats::default()
        };
        let session = oracle.choice_session(program);

        stats.candidates_checked += 1;
        let verify_start = Instant::now();
        let first_cex = session.find_counterexample(&ChoiceAssignment::default_choices(), &[]);
        stats.verify_elapsed += verify_start.elapsed();
        let first_cex = match first_cex {
            None => return SynthesisOutcome::AlreadyCorrect,
            Some(cex) => cex,
        };
        let mut counterexamples = vec![first_cex];
        let mut seen_counterexamples = IndexBitset::default();
        seen_counterexamples.insert(first_cex);
        stats.counterexamples = 1;

        // Per-site option counts in a stable order.
        let sites: Vec<(afg_eml::ChoiceId, usize)> = program
            .choices
            .iter()
            .map(|info| (info.id, info.options.len()))
            .collect();

        for cost in 1..=config.max_cost.min(sites.len()) {
            let mut combination = (0..cost).collect::<Vec<usize>>();
            loop {
                if cancel.is_cancelled() || start.elapsed() > config.time_budget {
                    stats.wall_clock_limited = true;
                    harvest_sweeps(&mut stats, &session);
                    stats.elapsed = start.elapsed();
                    return SynthesisOutcome::Timeout(stats);
                }
                if stats.candidates_checked > config.max_candidates {
                    harvest_sweeps(&mut stats, &session);
                    stats.elapsed = start.elapsed();
                    return SynthesisOutcome::Timeout(stats);
                }
                // Enumerate option selections for the chosen combination of
                // sites (each site picks one of its non-default options).
                let mut selection = vec![1usize; cost];
                'options: loop {
                    let mut assignment = ChoiceAssignment::default_choices();
                    for (slot, &site_index) in combination.iter().enumerate() {
                        assignment.select(sites[site_index].0, selection[slot]);
                    }
                    stats.candidates_checked += 1;
                    stats.cegis_iterations += 1;

                    // Zero-materialisation check: accumulated counterexamples
                    // first, then the rest of the bounded space.
                    let verify_start = Instant::now();
                    let verdict = session.find_counterexample(&assignment, &counterexamples);
                    stats.verify_elapsed += verify_start.elapsed();
                    match verdict {
                        None => {
                            harvest_sweeps(&mut stats, &session);
                            stats.elapsed = start.elapsed();
                            return SynthesisOutcome::Fixed(Solution {
                                assignment,
                                cost,
                                // Cost-ordered exploration: the first
                                // accepted candidate is provably minimal.
                                minimal: true,
                                counterexamples,
                                stats,
                            });
                        }
                        Some(cex) => {
                            if seen_counterexamples.insert(cex) {
                                counterexamples.push(cex);
                                stats.counterexamples += 1;
                            }
                        }
                    }
                    if cancel.is_cancelled() || start.elapsed() > config.time_budget {
                        stats.wall_clock_limited = true;
                        harvest_sweeps(&mut stats, &session);
                        stats.elapsed = start.elapsed();
                        return SynthesisOutcome::Timeout(stats);
                    }
                    if stats.candidates_checked > config.max_candidates {
                        harvest_sweeps(&mut stats, &session);
                        stats.elapsed = start.elapsed();
                        return SynthesisOutcome::Timeout(stats);
                    }

                    // Advance the per-site option counters (mixed-radix).
                    for slot in (0..cost).rev() {
                        let max_option = sites[combination[slot]].1 - 1;
                        if selection[slot] < max_option {
                            selection[slot] += 1;
                            for later in selection.iter_mut().skip(slot + 1) {
                                *later = 1;
                            }
                            continue 'options;
                        }
                    }
                    break;
                }

                // Advance to the next combination of `cost` sites.
                if !next_combination(&mut combination, sites.len()) {
                    break;
                }
            }
        }

        harvest_sweeps(&mut stats, &session);
        stats.elapsed = start.elapsed();
        SynthesisOutcome::NoRepairFound(stats)
    }
}

/// Advances `combination` (sorted indices into `0..n`) to the next
/// lexicographic combination; returns `false` when exhausted.
fn next_combination(combination: &mut [usize], n: usize) -> bool {
    let k = combination.len();
    if k == 0 || k > n {
        return false;
    }
    let mut i = k;
    while i > 0 {
        i -= 1;
        if combination[i] < n - (k - i) {
            combination[i] += 1;
            for j in i + 1..k {
                combination[j] = combination[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cegis::CegisSolver;
    use afg_eml::{apply_error_model, library};
    use afg_interp::{EquivalenceConfig, EquivalenceOracle};
    use afg_parser::parse_program;

    #[test]
    fn next_combination_enumerates_n_choose_k() {
        let mut combo = vec![0, 1];
        let mut count = 1;
        while next_combination(&mut combo, 4) {
            count += 1;
        }
        assert_eq!(count, 6); // C(4, 2)
        assert!(!next_combination(&mut [], 3));
        assert!(!next_combination(&mut [0, 1, 2, 3], 3));
    }

    const REFERENCE: &str = "\
def iterPower(base_int, exp_int):
    result = 1
    for i in range(exp_int):
        result *= base_int
    return result
";

    fn oracle() -> EquivalenceOracle {
        let reference = parse_program(REFERENCE).unwrap();
        EquivalenceOracle::from_reference(
            &reference,
            EquivalenceConfig {
                entry: Some("iterPower".into()),
                ..EquivalenceConfig::default()
            },
        )
    }

    #[test]
    fn enumerative_and_cegis_agree_on_minimal_cost() {
        // Student initialises the accumulator to 0 instead of 1.
        let student = parse_program(
            "def iterPower(base, exp):\n    result = 0\n    for i in range(exp):\n        result *= base\n    return result\n",
        )
        .unwrap();
        let model = afg_eml::ErrorModel::new("iterPower")
            .with_rule(library::initr())
            .with_rule(library::ranr1());
        let cp = apply_error_model(&student, Some("iterPower"), &model).unwrap();
        let oracle = oracle();
        let config = SynthesisConfig::fast();

        let enum_outcome = EnumerativeSolver::new().synthesize(&cp, &oracle, &config);
        let cegis_outcome = CegisSolver::new().synthesize(&cp, &oracle, &config);
        let enum_cost = enum_outcome
            .solution()
            .expect("enumerative finds a fix")
            .cost;
        let cegis_cost = cegis_outcome.solution().expect("cegis finds a fix").cost;
        assert_eq!(enum_cost, 1);
        assert_eq!(cegis_cost, 1);
    }

    #[test]
    fn already_correct_submission_short_circuits() {
        let student = parse_program(
            "def iterPower(base, exp):\n    result = 1\n    for i in range(exp):\n        result = result * base\n    return result\n",
        )
        .unwrap();
        let cp = apply_error_model(
            &student,
            Some("iterPower"),
            &afg_eml::ErrorModel::new("empty"),
        )
        .unwrap();
        let outcome = EnumerativeSolver::new().synthesize(&cp, &oracle(), &SynthesisConfig::fast());
        assert_eq!(outcome, SynthesisOutcome::AlreadyCorrect);
    }
}
