//! The autograder: the end-to-end pipeline of Figure 3.
//!
//! `student.py` → *Program Rewriter* (error model) → M̃PY → *Sketch
//! Translator / Solver* (choice encoding + CEGISMIN) → *Feedback Generator*.

use std::borrow::Cow;
use std::error::Error;
use std::fmt;
use std::time::Instant;

use afg_ast::canon::fnv1a64;
use afg_ast::Program;
use afg_eml::{apply_error_model, ErrorModel, TransformError};
use afg_interp::{EquivalenceConfig, EquivalenceOracle};
use afg_parser::{parse_program, ParseError};
use afg_synth::{Backend, SynthesisConfig, SynthesisOutcome};

use crate::feedback::{corrections_from_assignment, Feedback};

/// Errors raised while *setting up* a grader (problems with the instructor's
/// inputs, not with student submissions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraderError {
    /// The reference implementation does not parse.
    ReferenceSyntax(ParseError),
    /// The reference implementation defines no function with the entry name.
    MissingEntry {
        /// The requested entry-function name.
        entry: String,
    },
    /// A parameter of the entry function lacks the type suffix that drives
    /// bounded input enumeration (`poly_list_int`, `n_int`, …).
    UntypedParam {
        /// The entry-function name.
        entry: String,
        /// The offending parameter, as written.
        param: String,
    },
    /// The error model is ill-formed.
    Model(TransformError),
}

impl fmt::Display for GraderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraderError::ReferenceSyntax(err) => write!(f, "reference implementation: {err}"),
            GraderError::MissingEntry { entry } => write!(
                f,
                "reference implementation: no function named '{entry}' \
                 (the graded entry function must be defined)"
            ),
            GraderError::UntypedParam { entry, param } => write!(
                f,
                "reference implementation: parameter '{param}' of '{entry}' has no \
                 type suffix; declare one (e.g. '{param}_int' or '{param}_list_int') \
                 so the equivalence oracle can enumerate bounded inputs"
            ),
            GraderError::Model(err) => write!(f, "error model: {err}"),
        }
    }
}

impl Error for GraderError {}

/// One rung of an escalation ladder: a (possibly reduced) error model, its
/// own search budget and an optional back-end override.
///
/// Escalation exists because most incorrect submissions need only the
/// handful of cheapest correction rules, and a small model means a small
/// choice space — fast searches and fast `NoRepairFound` verdicts.  A tier
/// that cannot repair the submission hands it to the next, larger tier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EscalationTier {
    /// Display label (shown in `/stats`).
    pub label: String,
    /// Truncate the grader's error model to its first `n` rules for this
    /// tier (`None` = the full model).  Mirrors the paper's E0..E5 models of
    /// increasing size (Figure 14(b)).
    pub model_rules: Option<usize>,
    /// This tier's search budget.
    pub synthesis: SynthesisConfig,
    /// This tier's back end (`None` = the grader's configured backend).
    pub backend: Option<Backend>,
}

/// The full ladder.  An empty ladder means single-shot grading with the
/// grader's own model, budget and backend.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EscalationPolicy {
    /// The tiers, tried in order; grading escalates past a tier on
    /// `NoRepairFound` (and on `Timeout` for every tier but the last).
    pub tiers: Vec<EscalationTier>,
}

impl EscalationPolicy {
    /// Single-shot grading (no ladder).
    pub fn single_shot() -> EscalationPolicy {
        EscalationPolicy::default()
    }

    /// Whether grading runs as a single shot.
    pub fn is_single_shot(&self) -> bool {
        self.tiers.is_empty()
    }

    /// The canonical two-rung ladder: the model's first `cheap_rules` rules
    /// under `cheap` budgets first, the full model under `full` budgets on
    /// escalation.
    pub fn cheap_first(
        cheap_rules: usize,
        cheap: SynthesisConfig,
        full: SynthesisConfig,
    ) -> EscalationPolicy {
        EscalationPolicy {
            tiers: vec![
                EscalationTier {
                    label: format!("cheap-{cheap_rules}"),
                    model_rules: Some(cheap_rules),
                    synthesis: cheap,
                    backend: None,
                },
                EscalationTier {
                    label: "full".to_string(),
                    model_rules: None,
                    synthesis: full,
                    backend: None,
                },
            ],
        }
    }
}

/// Configuration of the grading pipeline.
#[derive(Debug, Clone, Default)]
pub struct GraderConfig {
    /// Bounded input space and execution limits for equivalence checking.
    pub equivalence: EquivalenceConfig,
    /// Search budget for the synthesizer.
    pub synthesis: SynthesisConfig,
    /// Which synthesis back end to run.
    pub backend: Backend,
    /// Optional escalation ladder (empty = grade in one shot).
    pub escalation: EscalationPolicy,
}

impl GraderConfig {
    /// A small budget suitable for tests.
    pub fn fast() -> GraderConfig {
        GraderConfig {
            equivalence: EquivalenceConfig::default(),
            synthesis: SynthesisConfig::fast(),
            backend: Backend::Cegis,
            escalation: EscalationPolicy::single_shot(),
        }
    }
}

/// The result of grading one student submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GradeOutcome {
    /// The submission does not parse (excluded from the paper's test set).
    SyntaxError(ParseError),
    /// The submission is behaviourally equivalent to the reference.
    Correct,
    /// The submission is incorrect and the tool found minimal corrections.
    Feedback(Feedback),
    /// The submission is incorrect and the error model cannot repair it
    /// (the paper's "completely incorrect / big conceptual error" bucket).
    CannotFix,
    /// The search exceeded its time or candidate budget.
    Timeout,
}

impl GradeOutcome {
    /// Whether feedback (or a correctness verdict) was produced.
    pub fn feedback(&self) -> Option<&Feedback> {
        match self {
            GradeOutcome::Feedback(feedback) => Some(feedback),
            _ => None,
        }
    }
}

/// The automated feedback generator for one assignment.
///
/// Holds the instructor's inputs — the reference implementation, the graded
/// function's name and the error model — plus the cached equivalence oracle,
/// and grades any number of student submissions against them.
#[derive(Debug, Clone)]
pub struct Autograder {
    reference: Program,
    entry: String,
    model: ErrorModel,
    config: GraderConfig,
    oracle: EquivalenceOracle,
    /// Memoized [`Autograder::config_fingerprint`] (grading is hot; the
    /// configuration is fixed after construction modulo `set_model`).
    config_fingerprint: u64,
}

impl Autograder {
    /// Builds a grader from the reference implementation's source code.
    ///
    /// # Errors
    ///
    /// Returns [`GraderError::ReferenceSyntax`] if the reference does not
    /// parse, [`GraderError::MissingEntry`] if it defines no function named
    /// `entry`, and [`GraderError::UntypedParam`] if a parameter of the
    /// entry function lacks a type suffix — each is an instructor mistake
    /// better rejected at construction time than discovered as misbehaviour
    /// halfway through grading a class.
    pub fn new(
        reference_source: &str,
        entry: &str,
        model: ErrorModel,
        config: GraderConfig,
    ) -> Result<Autograder, GraderError> {
        let reference = parse_program(reference_source).map_err(GraderError::ReferenceSyntax)?;
        Autograder::from_program(reference, entry, model, config)
    }

    /// Builds a grader from an already-parsed reference implementation,
    /// applying the same validation as [`Autograder::new`].
    pub fn from_program(
        reference: Program,
        entry: &str,
        model: ErrorModel,
        config: GraderConfig,
    ) -> Result<Autograder, GraderError> {
        validate_reference(&reference, entry)?;
        let mut equivalence = config.equivalence.clone();
        equivalence.entry = Some(entry.to_string());
        let oracle = EquivalenceOracle::from_reference(&reference, equivalence);
        let config_fingerprint = fingerprint_configuration(&reference, entry, &config, &model);
        Ok(Autograder {
            reference,
            entry: entry.to_string(),
            model,
            config,
            oracle,
            config_fingerprint,
        })
    }

    /// The reference implementation being graded against.
    pub fn reference(&self) -> &Program {
        &self.reference
    }

    /// The name of the graded function.
    pub fn entry(&self) -> &str {
        &self.entry
    }

    /// The error model in use.
    pub fn model(&self) -> &ErrorModel {
        &self.model
    }

    /// The equivalence oracle (exposed for experiment harnesses).
    pub fn oracle(&self) -> &EquivalenceOracle {
        &self.oracle
    }

    /// The grading configuration (backend, budgets, escalation ladder).
    pub fn config(&self) -> &GraderConfig {
        &self.config
    }

    /// A 64-bit fingerprint of everything that can change a verdict: the
    /// reference implementation and entry name, the full grading
    /// configuration (backend, budgets, escalation ladder,
    /// equivalence/input-space settings) and the error model's content.
    /// The fingerprint cache mixes this into its keys so one cache can
    /// safely serve differently-configured graders.  Memoized at
    /// construction (and on [`Autograder::set_model`]).
    pub fn config_fingerprint(&self) -> u64 {
        self.config_fingerprint
    }

    /// The error model a tier grades with (possibly a truncation of the
    /// full model).  `None` when the tier index is out of range for the
    /// configured ladder — only possible when replaying a cache entry
    /// recorded under a different configuration, which the config
    /// fingerprint in the cache key already rules out in practice.
    pub(crate) fn tier_model(&self, tier_index: usize) -> Option<Cow<'_, ErrorModel>> {
        let model_rules = if self.config.escalation.is_single_shot() {
            if tier_index != 0 {
                return None;
            }
            None
        } else {
            self.config.escalation.tiers.get(tier_index)?.model_rules
        };
        Some(match model_rules {
            Some(rules) if rules < self.model.rules.len() => {
                Cow::Owned(self.model.truncated(rules))
            }
            _ => Cow::Borrowed(&self.model),
        })
    }

    /// Replaces the error model (used by the Figure 14(b)/(c) experiments
    /// that sweep over models of increasing size).
    pub fn set_model(&mut self, model: ErrorModel) {
        self.model = model;
        self.config_fingerprint =
            fingerprint_configuration(&self.reference, &self.entry, &self.config, &self.model);
    }

    /// Grades a submission given as source text.
    pub fn grade_source(&self, student_source: &str) -> GradeOutcome {
        match parse_program(student_source) {
            Err(err) => GradeOutcome::SyntaxError(err),
            Ok(program) => self.grade_program(&program),
        }
    }

    /// Grades an already-parsed submission.
    pub fn grade_program(&self, student: &Program) -> GradeOutcome {
        self.grade_program_traced(student).outcome
    }

    /// Grades a submission and additionally returns what the fingerprint
    /// cache needs: the minimal choice assignment behind a
    /// [`GradeOutcome::Feedback`] (so an alpha-equivalent submission can
    /// *replay* the repair instead of re-running synthesis) and whether the
    /// verdict is deterministic enough to cache at all.
    pub(crate) fn grade_program_traced(&self, student: &Program) -> TracedGrade {
        self.grade_program_traced_warm(student, None)
    }

    /// As [`Autograder::grade_program_traced`], additionally offering a
    /// cluster representative's repair to the synthesizer as a warm start.
    /// The hypothesis is only handed to the tier that produced it, and only
    /// when that tier's choice program has the structural signature the
    /// donor search explored; the search re-verifies it before trusting it,
    /// so outcomes stay cost-identical to a cold grade (see
    /// [`crate::ClusterIndex`]).
    pub(crate) fn grade_program_traced_warm(
        &self,
        student: &Program,
        transfer: Option<&crate::cluster::ClusterRepair>,
    ) -> TracedGrade {
        let start = Instant::now();
        // The resolved plan: the configured ladder, or an implicit single
        // tier borrowed-together from the grader's own settings.
        let single_shot;
        let plan: &[EscalationTier] = if self.config.escalation.is_single_shot() {
            single_shot = [EscalationTier {
                label: "default".to_string(),
                model_rules: None,
                synthesis: self.config.synthesis.clone(),
                backend: Some(self.config.backend),
            }];
            &single_shot
        } else {
            &self.config.escalation.tiers
        };
        let last_tier = plan.len() - 1;
        // Set when ANY tier attempted so far stopped on the wall clock: on
        // an idle machine that tier might have produced a different
        // verdict, so every non-Fixed verdict downstream of it is
        // load-dependent and must not be cached.
        let mut load_dependent = false;
        // The choice-program signature of every tier attempted, for the
        // structural replay guard of cached CannotFix/Timeout verdicts.
        let mut attempted_signatures: Vec<u64> = Vec::new();
        // Whether any tier actually tried / verified the transferred
        // hypothesis, for the cluster index's counters.
        let mut transfer_record = TransferRecord::default();
        for (tier_index, tier) in plan.iter().enumerate() {
            let model = self
                .tier_model(tier_index)
                .expect("tier index comes from the plan");
            let choice_program = match apply_error_model(student, Some(&self.entry), &model) {
                Ok(cp) => cp,
                Err(TransformError::NoEntryFunction) => {
                    return TracedGrade::cacheable(GradeOutcome::CannotFix)
                }
                Err(err) => {
                    // An ill-formed model is an instructor error; surface it as
                    // an unfixable submission rather than panicking mid-batch.
                    debug_assert!(false, "error model rejected at grading time: {err}");
                    return TracedGrade::cacheable(GradeOutcome::CannotFix);
                }
            };
            let signature = crate::cache::choice_signature(&choice_program);
            attempted_signatures.push(signature);
            let backend = tier.backend.unwrap_or(self.config.backend);
            // The transferred hypothesis applies only to the donor's tier,
            // and only if this submission's choice program has the shape
            // the donor's search explored.
            let warm = transfer.and_then(|repair| {
                (repair.tier == tier_index && repair.signature == signature).then(|| {
                    afg_synth::WarmStart {
                        assignment: repair.assignment.clone(),
                        counterexamples: repair.counterexamples.clone(),
                    }
                })
            });
            let mut search_span = afg_obs::stage_span!("search");
            search_span.attr("tier", tier.label.clone());
            let mut outcome = backend.synthesize_with_hint(
                &choice_program,
                &self.oracle,
                &tier.synthesis,
                warm.as_ref(),
            );
            let warm_attempted = outcome
                .stats()
                .is_some_and(|stats| stats.warm_start_attempted);
            if warm_attempted && !outcome.is_definitive() {
                // The budget truncated a warm-started search.  A truncated
                // descent explores a different trajectory than cold would
                // (the hypothesis sweep, its blocking clause and the
                // pre-seeded counterexamples all shift which candidates the
                // budget covers), so the best-so-far verdict could differ
                // from cold grading's — and verdicts must never depend on
                // cluster arrival order.  Re-grade cold and use that result;
                // the transfer is recorded as a (costly) miss.
                transfer_record.attempted = true;
                outcome = backend.synthesize_with_hint(
                    &choice_program,
                    &self.oracle,
                    &tier.synthesis,
                    None,
                );
            } else if let Some(stats) = outcome.stats() {
                transfer_record.attempted |= stats.warm_start_attempted;
                transfer_record.verified |= stats.warm_start_verified;
            }
            if let Some(stats) = outcome.stats() {
                search_span.attr("strategy", stats.strategy);
                afg_obs::counter!("afg_sat_conflicts_total", "SAT conflicts across searches")
                    .add(stats.sat_conflicts);
                afg_obs::counter!(
                    "afg_sat_propagations_total",
                    "SAT unit propagations across searches"
                )
                .add(stats.sat_propagations);
                afg_obs::counter!(
                    "afg_sat_learnts_total",
                    "SAT clauses learnt across searches"
                )
                .add(stats.sat_learnts);
            }
            drop(search_span);
            match outcome {
                SynthesisOutcome::AlreadyCorrect => {
                    return TracedGrade {
                        transfer: transfer_record,
                        ..TracedGrade::cacheable(GradeOutcome::Correct)
                    }
                }
                SynthesisOutcome::Fixed(solution) => {
                    let corrections =
                        corrections_from_assignment(&choice_program, &solution.assignment);
                    // A proven-minimal repair is a deterministic verdict; a
                    // best-so-far repair is only cacheable when the search
                    // stopped on its candidate budget — if the wall clock
                    // cut it (or an earlier tier) short, an idle machine
                    // could find a cheaper repair, and caching would pin
                    // this cost onto all alpha-equivalent resubmissions.
                    let cacheable =
                        !load_dependent && (solution.minimal || !solution.stats.wall_clock_limited);
                    let trace = RepairTrace {
                        signature,
                        assignment: solution.assignment,
                        counterexamples: solution.counterexamples,
                        stats: solution.stats.clone(),
                        tier: tier_index,
                    };
                    return TracedGrade {
                        outcome: GradeOutcome::Feedback(Feedback {
                            corrections,
                            cost: solution.cost,
                            elapsed: start.elapsed(),
                            stats: solution.stats,
                        }),
                        repair: Some(trace),
                        cacheable,
                        guard: None,
                        transfer: transfer_record,
                    };
                }
                // This tier cannot repair the submission (or ran out of
                // budget): escalate to the next, larger tier, remembering
                // whether the stop was load-dependent.
                SynthesisOutcome::NoRepairFound(stats) | SynthesisOutcome::Timeout(stats)
                    if tier_index < last_tier =>
                {
                    load_dependent |= stats.wall_clock_limited;
                }
                SynthesisOutcome::NoRepairFound(stats) => {
                    return TracedGrade {
                        outcome: GradeOutcome::CannotFix,
                        repair: None,
                        // Sound only if no earlier tier was cut short by
                        // the clock — that tier might have repaired it.
                        cacheable: !load_dependent && !stats.wall_clock_limited,
                        guard: Some(ReplayGuard {
                            combined_signature: combine_signatures(&attempted_signatures),
                            tiers_attempted: attempted_signatures.len(),
                        }),
                        transfer: transfer_record,
                    };
                }
                SynthesisOutcome::Timeout(stats) => {
                    return TracedGrade {
                        outcome: GradeOutcome::Timeout,
                        repair: None,
                        // A timeout is only a *property of the submission*
                        // when every search along the ladder exhausted its
                        // candidate budget — that replays identically
                        // anywhere.  A wall-clock (or cancellation) stop in
                        // ANY tier depends on machine load: caching it
                        // would pin a transient verdict onto every future
                        // alpha-equivalent submission.  The strategies
                        // record which one happened — for a portfolio,
                        // whether any racer hit the clock.
                        cacheable: !load_dependent && !stats.wall_clock_limited,
                        guard: Some(ReplayGuard {
                            combined_signature: combine_signatures(&attempted_signatures),
                            tiers_attempted: attempted_signatures.len(),
                        }),
                        transfer: transfer_record,
                    };
                }
            }
        }
        unreachable!("the final tier always returns")
    }
}

/// The result of [`Autograder::grade_program_traced`].
pub(crate) struct TracedGrade {
    pub outcome: GradeOutcome,
    /// The replayable repair, for `Feedback` outcomes.
    pub repair: Option<RepairTrace>,
    /// Whether the verdict may be stored in the fingerprint cache.
    pub cacheable: bool,
    /// Structural guard for cached `CannotFix`/`Timeout` verdicts: these
    /// depend on the choice program searched, and error models with
    /// hardcoded teacher names make choice programs alpha-variant, so
    /// replay onto another submission must confirm the structure matches
    /// (`None` = the verdict is structure-independent, e.g. a missing
    /// entry function).
    pub guard: Option<ReplayGuard>,
    /// What happened to the offered cluster warm start, if any.
    pub transfer: TransferRecord,
}

/// Whether a transferred cluster hypothesis was tried / verified during
/// one grading run (for [`crate::ClusterIndex`]'s counters).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct TransferRecord {
    /// The search actually spent a verification sweep on the hypothesis.
    pub attempted: bool,
    /// The hypothesis verified and warm-started the descent.
    pub verified: bool,
}

impl TracedGrade {
    fn cacheable(outcome: GradeOutcome) -> TracedGrade {
        TracedGrade {
            outcome,
            repair: None,
            cacheable: true,
            guard: None,
            transfer: TransferRecord::default(),
        }
    }
}

/// The structural precondition for replaying a search-dependent verdict
/// (see [`TracedGrade::guard`]).
///
/// A `CannotFix`/`Timeout` verdict reflects searches over the choice
/// programs of *every* tier attempted, so the guard folds all of their
/// signatures — guarding only the final tier would let a stale verdict
/// replay onto a submission that an earlier tier (whose model need not be
/// a subset of the final one) would now repair.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ReplayGuard {
    /// [`combine_signatures`] over the attempted tiers' choice programs,
    /// in tier order.
    pub combined_signature: u64,
    /// How many tiers (0..n) were attempted before the verdict.
    pub tiers_attempted: usize,
}

/// Folds per-tier choice-program signatures into one comparison value.
pub(crate) fn combine_signatures(signatures: &[u64]) -> u64 {
    let mut description = String::new();
    for signature in signatures {
        description.push_str(&format!("{signature:016x};"));
    }
    fnv1a64(description.as_bytes())
}

/// The replayable part of a synthesis result (see
/// [`Autograder::grade_program_traced`]).
#[derive(Debug, Clone)]
pub(crate) struct RepairTrace {
    /// The minimal-cost selection of correction options.
    pub assignment: afg_eml::ChoiceAssignment,
    /// Structural signature of the choice program the assignment indexes
    /// into (rule names and option counts; alpha-invariant).
    pub signature: u64,
    /// The counterexample input indices the search accumulated, stored by
    /// the cluster index to pre-seed cluster-mates' warm starts.
    pub counterexamples: Vec<usize>,
    /// Synthesizer counters from the original run.
    pub stats: afg_synth::SynthesisStats,
    /// Which escalation tier produced the repair — replay must rebuild the
    /// choice program with the same (possibly truncated) model.
    pub tier: usize,
}

/// Hashes everything that can change a verdict into a 64-bit fingerprint
/// (see [`Autograder::config_fingerprint`]): the canonical reference
/// source and entry name (they define the oracle), the full grading
/// configuration via its `Debug` rendering — equivalence/input-space
/// settings, budgets, backend, ladder; a later field addition cannot
/// silently fall out of the key — and the error model's rule content.
fn fingerprint_configuration(
    reference: &Program,
    entry: &str,
    config: &GraderConfig,
    model: &ErrorModel,
) -> u64 {
    let description = format!(
        "{}\u{1f}{entry}\u{1f}{config:?}\u{1f}{model:?}",
        afg_ast::canon::canonical_source(reference)
    );
    fnv1a64(description.as_bytes())
}

/// Construction-time validation of the instructor's reference program.
fn validate_reference(reference: &Program, entry: &str) -> Result<(), GraderError> {
    let Some(func) = reference.funcs.iter().rev().find(|f| f.name == entry) else {
        return Err(GraderError::MissingEntry {
            entry: entry.to_string(),
        });
    };
    for param in &func.params {
        if param.ty == afg_ast::types::MpyType::Dynamic {
            return Err(GraderError::UntypedParam {
                entry: entry.to_string(),
                param: param.name.clone(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use afg_eml::library;

    const REFERENCE: &str = "\
def computeDeriv(poly_list_int):
    result = []
    for i in range(len(poly_list_int)):
        result += [i * poly_list_int[i]]
    if len(poly_list_int) == 1:
        return result
    else:
        return result[1:]
";

    fn grader() -> Autograder {
        Autograder::new(
            REFERENCE,
            "computeDeriv",
            library::compute_deriv_model(),
            GraderConfig::fast(),
        )
        .unwrap()
    }

    #[test]
    fn rejects_unparsable_reference() {
        let err = Autograder::new("def f(:\n", "f", ErrorModel::new("m"), GraderConfig::fast())
            .unwrap_err();
        assert!(matches!(err, GraderError::ReferenceSyntax(_)));
        assert!(err.to_string().contains("reference implementation"));
    }

    #[test]
    fn rejects_reference_without_the_entry_function() {
        let err = Autograder::new(
            "def helper(x_int):\n    return x_int\n",
            "computeDeriv",
            ErrorModel::new("m"),
            GraderConfig::fast(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            GraderError::MissingEntry {
                entry: "computeDeriv".to_string()
            }
        );
        assert!(
            err.to_string().contains("no function named 'computeDeriv'"),
            "{err}"
        );
    }

    #[test]
    fn rejects_reference_with_untyped_parameters() {
        let err = Autograder::new(
            "def f(poly):\n    return poly\n",
            "f",
            ErrorModel::new("m"),
            GraderConfig::fast(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            GraderError::UntypedParam {
                entry: "f".to_string(),
                param: "poly".to_string()
            }
        );
        let rendered = err.to_string();
        assert!(rendered.contains("parameter 'poly' of 'f'"), "{rendered}");
        assert!(rendered.contains("poly_int"), "{rendered}");

        // A mix of typed and untyped parameters names the untyped one.
        let err = Autograder::new(
            "def f(n_int, acc):\n    return acc\n",
            "f",
            ErrorModel::new("m"),
            GraderConfig::fast(),
        )
        .unwrap_err();
        assert!(matches!(err, GraderError::UntypedParam { param, .. } if param == "acc"));
    }

    #[test]
    fn classifies_syntax_errors() {
        let outcome = grader().grade_source("def computeDeriv(poly)\n    return poly\n");
        assert!(matches!(outcome, GradeOutcome::SyntaxError(_)));
    }

    #[test]
    fn classifies_correct_submissions() {
        let outcome = grader().grade_source(
            "def computeDeriv(poly):\n    if len(poly) == 1:\n        return [0]\n    d = []\n    for i in range(1, len(poly)):\n        d.append(i * poly[i])\n    return d\n",
        );
        assert_eq!(outcome, GradeOutcome::Correct);
    }

    #[test]
    fn produces_feedback_for_off_by_one_iteration() {
        let outcome = grader().grade_source(
            "def computeDeriv(poly):\n    if len(poly) == 1:\n        return [0]\n    d = []\n    for i in range(0, len(poly)):\n        d.append(i * poly[i])\n    return d\n",
        );
        let feedback = outcome.feedback().expect("expected feedback");
        // Several single-correction repairs exist (start the range at 1, or
        // drop the leading element of the result); the minimiser must find
        // one of them, i.e. exactly one correction.
        assert_eq!(feedback.cost, 1);
        assert_eq!(feedback.corrections.len(), 1);
        let rendered = feedback.to_string();
        assert!(
            rendered.contains("The program requires 1 change:"),
            "{rendered}"
        );
        assert!(rendered.contains("in line"), "{rendered}");
    }

    const OFF_BY_ONE: &str = "def computeDeriv(poly):\n    if len(poly) == 1:\n        return [0]\n    d = []\n    for i in range(0, len(poly)):\n        d.append(i * poly[i])\n    return d\n";

    #[test]
    fn escalation_reaches_the_tier_that_can_repair() {
        // Tier 0 grades with zero rules (an empty model cannot repair
        // anything), tier 1 with the full model: the off-by-one submission
        // must escalate and still come out with the cost-1 feedback, byte
        // identical to single-shot grading.
        let mut config = GraderConfig::fast();
        config.escalation =
            EscalationPolicy::cheap_first(0, SynthesisConfig::fast(), SynthesisConfig::fast());
        let escalating = Autograder::new(
            REFERENCE,
            "computeDeriv",
            library::compute_deriv_model(),
            config,
        )
        .unwrap();

        let single_shot = grader().grade_source(OFF_BY_ONE);
        let escalated = escalating.grade_source(OFF_BY_ONE);
        let (a, b) = (
            single_shot.feedback().expect("feedback"),
            escalated.feedback().expect("feedback"),
        );
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.to_string(), b.to_string());
        // Correct submissions do not escalate past tier 0's verdict.
        let correct = "def computeDeriv(poly):\n    if len(poly) == 1:\n        return [0]\n    d = []\n    for i in range(1, len(poly)):\n        d.append(i * poly[i])\n    return d\n";
        assert_eq!(escalating.grade_source(correct), GradeOutcome::Correct);
    }

    #[test]
    fn escalation_and_backend_change_the_config_fingerprint() {
        let base = grader();
        let mut portfolio_config = GraderConfig::fast();
        portfolio_config.backend = Backend::Portfolio;
        let portfolio = Autograder::new(
            REFERENCE,
            "computeDeriv",
            library::compute_deriv_model(),
            portfolio_config,
        )
        .unwrap();
        let mut ladder_config = GraderConfig::fast();
        ladder_config.escalation =
            EscalationPolicy::cheap_first(2, SynthesisConfig::fast(), SynthesisConfig::fast());
        let ladder = Autograder::new(
            REFERENCE,
            "computeDeriv",
            library::compute_deriv_model(),
            ladder_config,
        )
        .unwrap();

        assert_eq!(base.config_fingerprint(), grader().config_fingerprint());
        assert_ne!(base.config_fingerprint(), portfolio.config_fingerprint());
        assert_ne!(base.config_fingerprint(), ladder.config_fingerprint());
        assert_ne!(portfolio.config_fingerprint(), ladder.config_fingerprint());

        // The equivalence configuration changes verdicts (it defines the
        // bounded input space), so it must change the fingerprint too.
        let mut equiv_config = GraderConfig::fast();
        equiv_config.equivalence.limits.fuel += 1;
        let equiv = Autograder::new(
            REFERENCE,
            "computeDeriv",
            library::compute_deriv_model(),
            equiv_config,
        )
        .unwrap();
        assert_ne!(base.config_fingerprint(), equiv.config_fingerprint());

        // So does the error model's *content*, not just its name: swapping
        // the model via set_model refreshes the memoized fingerprint.
        let mut swapped = grader();
        let before = swapped.config_fingerprint();
        swapped.set_model(library::compute_deriv_model().truncated(1));
        assert_ne!(before, swapped.config_fingerprint());
    }

    #[test]
    fn portfolio_backend_grades_like_cegis() {
        let mut config = GraderConfig::fast();
        config.backend = Backend::Portfolio;
        let portfolio = Autograder::new(
            REFERENCE,
            "computeDeriv",
            library::compute_deriv_model(),
            config,
        )
        .unwrap();
        let outcome = portfolio.grade_source(OFF_BY_ONE);
        let feedback = outcome.feedback().expect("feedback");
        assert_eq!(feedback.cost, 1);
        assert!(
            ["cegis", "enum"].contains(&feedback.stats.strategy),
            "portfolio feedback must name the winning strategy, got '{}'",
            feedback.stats.strategy
        );
    }

    #[test]
    fn unfixable_submissions_are_reported() {
        let outcome = grader().grade_source("def computeDeriv(poly):\n    return 42\n");
        assert!(matches!(
            outcome,
            GradeOutcome::CannotFix | GradeOutcome::Timeout
        ));
        // A program with no function at all cannot be graded either.
        let outcome = grader().grade_source("x = 1\n");
        assert!(matches!(
            outcome,
            GradeOutcome::SyntaxError(_) | GradeOutcome::CannotFix
        ));
    }
}
