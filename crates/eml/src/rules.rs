//! Correction rules: the abstract syntax of EML.
//!
//! An EML error model is a set of rewrite rules `L → R` (paper §3.2).
//! The left-hand side is a [`Pattern`] over MPY expressions (or one of a
//! small number of statement shapes); the right-hand side is a list of
//! alternative [`Template`]s.  Matching binds the pattern's metavariables;
//! instantiating a template may reference those bindings (`a`), re-enter the
//! transformation on them (`a'`, the paper's *prime* operator), expand to
//! every variable in scope (`?a`), or offer nested sets of alternatives.

use std::collections::HashMap;

use afg_ast::ops::{BinOp, CmpOp};
use afg_ast::{Expr, Stmt};

/// A pattern over MPY expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pattern {
    /// Metavariable matching any expression and binding it (`a`, `a0`, ...).
    AnyExpr(String),
    /// Metavariable matching only a variable reference (`v`, `v0`, ...).
    AnyVar(String),
    /// Metavariable matching only an integer literal (`n`, `n0`, ...).
    AnyConst(String),
    /// Matches anything without binding.
    Wildcard,
    /// Matches a specific variable name.
    Var(String),
    /// Matches a specific integer literal.
    Int(i64),
    /// Matches a specific boolean literal.
    Bool(bool),
    /// Matches a list literal element-wise.
    List(Vec<Pattern>),
    /// Matches indexing `base[index]`.
    Index(Box<Pattern>, Box<Pattern>),
    /// Matches a call to a specific function.
    Call(String, Vec<Pattern>),
    /// Matches a method call with a specific method name.
    MethodCall(Box<Pattern>, String, Vec<Pattern>),
    /// Matches a binary operation; `None` matches any arithmetic operator and
    /// records it in the bindings.
    BinOp(Option<BinOp>, Box<Pattern>, Box<Pattern>),
    /// Matches a comparison; `None` matches any comparison operator and
    /// records it in the bindings.
    Compare(Option<CmpOp>, Box<Pattern>, Box<Pattern>),
}

impl Pattern {
    /// Shorthand for an expression metavariable.
    pub fn meta(name: impl Into<String>) -> Pattern {
        Pattern::AnyExpr(name.into())
    }

    /// Number of nodes in the pattern (used by well-formedness checking).
    pub fn size(&self) -> usize {
        match self {
            Pattern::AnyExpr(_)
            | Pattern::AnyVar(_)
            | Pattern::AnyConst(_)
            | Pattern::Wildcard
            | Pattern::Var(_)
            | Pattern::Int(_)
            | Pattern::Bool(_) => 1,
            Pattern::List(items) => 1 + items.iter().map(Pattern::size).sum::<usize>(),
            Pattern::Index(a, b) => 1 + a.size() + b.size(),
            Pattern::Call(_, args) => 1 + args.iter().map(Pattern::size).sum::<usize>(),
            Pattern::MethodCall(recv, _, args) => {
                1 + recv.size() + args.iter().map(Pattern::size).sum::<usize>()
            }
            Pattern::BinOp(_, a, b) | Pattern::Compare(_, a, b) => 1 + a.size() + b.size(),
        }
    }

    /// The depth (1 = top level) at which each metavariable is bound.
    pub fn metavar_depths(&self, depth: usize, out: &mut HashMap<String, usize>) {
        match self {
            Pattern::AnyExpr(name) | Pattern::AnyVar(name) | Pattern::AnyConst(name) => {
                out.entry(name.clone()).or_insert(depth);
            }
            Pattern::List(items) => {
                for item in items {
                    item.metavar_depths(depth + 1, out);
                }
            }
            Pattern::Index(a, b) | Pattern::BinOp(_, a, b) | Pattern::Compare(_, a, b) => {
                a.metavar_depths(depth + 1, out);
                b.metavar_depths(depth + 1, out);
            }
            Pattern::Call(_, args) => {
                for arg in args {
                    arg.metavar_depths(depth + 1, out);
                }
            }
            Pattern::MethodCall(recv, _, args) => {
                recv.metavar_depths(depth + 1, out);
                for arg in args {
                    arg.metavar_depths(depth + 1, out);
                }
            }
            _ => {}
        }
    }
}

/// The bindings produced by a successful match.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bindings {
    exprs: HashMap<String, Expr>,
    /// The comparison operator matched by a `Compare(None, ..)` pattern.
    pub cmp_op: Option<CmpOp>,
    /// The arithmetic operator matched by a `BinOp(None, ..)` pattern.
    pub bin_op: Option<BinOp>,
}

impl Bindings {
    /// The expression bound to a metavariable.
    pub fn expr(&self, name: &str) -> Option<&Expr> {
        self.exprs.get(name)
    }

    /// Binds a metavariable directly (used by the transformation for the
    /// fixed-shape `Init` and `Return` rules whose bindings are implicit).
    pub fn insert(&mut self, name: impl Into<String>, expr: Expr) {
        self.exprs.insert(name.into(), expr);
    }

    fn bind(&mut self, name: &str, expr: &Expr) -> bool {
        match self.exprs.get(name) {
            Some(existing) => existing == expr,
            None => {
                self.exprs.insert(name.to_string(), expr.clone());
                true
            }
        }
    }
}

/// Attempts to match `pattern` against `expr`, returning the bindings.
pub fn match_expr(pattern: &Pattern, expr: &Expr) -> Option<Bindings> {
    let mut bindings = Bindings::default();
    if match_into(pattern, expr, &mut bindings) {
        Some(bindings)
    } else {
        None
    }
}

fn match_into(pattern: &Pattern, expr: &Expr, bindings: &mut Bindings) -> bool {
    match pattern {
        Pattern::Wildcard => true,
        Pattern::AnyExpr(name) => bindings.bind(name, expr),
        Pattern::AnyVar(name) => matches!(expr, Expr::Var(_)) && bindings.bind(name, expr),
        Pattern::AnyConst(name) => matches!(expr, Expr::Int(_)) && bindings.bind(name, expr),
        Pattern::Var(expected) => matches!(expr, Expr::Var(name) if name == expected),
        Pattern::Int(expected) => matches!(expr, Expr::Int(v) if v == expected),
        Pattern::Bool(expected) => matches!(expr, Expr::Bool(b) if b == expected),
        Pattern::List(patterns) => match expr {
            Expr::List(items) if items.len() == patterns.len() => patterns
                .iter()
                .zip(items)
                .all(|(p, e)| match_into(p, e, bindings)),
            _ => false,
        },
        Pattern::Index(base_p, index_p) => match expr {
            Expr::Index(base, index) => {
                match_into(base_p, base, bindings) && match_into(index_p, index, bindings)
            }
            _ => false,
        },
        Pattern::Call(name, arg_patterns) => match expr {
            Expr::Call(func, args) if func == name && args.len() == arg_patterns.len() => {
                arg_patterns
                    .iter()
                    .zip(args)
                    .all(|(p, e)| match_into(p, e, bindings))
            }
            _ => false,
        },
        Pattern::MethodCall(recv_p, name, arg_patterns) => match expr {
            Expr::MethodCall(recv, method, args)
                if method == name && args.len() == arg_patterns.len() =>
            {
                match_into(recv_p, recv, bindings)
                    && arg_patterns
                        .iter()
                        .zip(args)
                        .all(|(p, e)| match_into(p, e, bindings))
            }
            _ => false,
        },
        Pattern::BinOp(op_pattern, left_p, right_p) => match expr {
            Expr::BinOp(op, left, right) => {
                let op_matches = match op_pattern {
                    Some(expected) => expected == op,
                    None => {
                        bindings.bin_op = Some(*op);
                        true
                    }
                };
                op_matches
                    && match_into(left_p, left, bindings)
                    && match_into(right_p, right, bindings)
            }
            _ => false,
        },
        Pattern::Compare(op_pattern, left_p, right_p) => match expr {
            Expr::Compare(op, left, right) => {
                let op_matches = match op_pattern {
                    Some(expected) => expected == op,
                    None => {
                        bindings.cmp_op = Some(*op);
                        true
                    }
                };
                op_matches
                    && match_into(left_p, left, bindings)
                    && match_into(right_p, right, bindings)
            }
            _ => false,
        },
    }
}

/// The operator position of a comparison template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CmpTemplate {
    /// A fixed operator.
    Fixed(CmpOp),
    /// The operator bound by the pattern (unchanged).
    Original,
    /// A choice among all relational operators, with the original as the
    /// zero-cost default (the paper's `õpc = {<, >, ≤, ≥, ==, ≠}`).
    AnyRelational,
}

/// A right-hand-side template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Template {
    /// A bound metavariable inserted verbatim (no further transformation).
    Meta(String),
    /// A bound metavariable that is *recursively transformed* by the error
    /// model — the paper's prime operator `a'`.
    MetaPrime(String),
    /// The whole matched expression, verbatim.
    Original,
    /// Every variable in scope (the paper's `?a` shorthand); expands to one
    /// alternative per variable.
    AnyScopeVar,
    /// A set of alternatives for the position originally occupied by the
    /// given metavariable: the metavariable's binding is the zero-cost
    /// default and each listed template is a cost-1 alternative.
    SetOf(String, Vec<Template>),
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// String literal.
    Str(String),
    /// List literal.
    List(Vec<Template>),
    /// Variable reference.
    Var(String),
    /// Indexing.
    Index(Box<Template>, Box<Template>),
    /// Slicing.
    Slice(Box<Template>, Option<Box<Template>>, Option<Box<Template>>),
    /// Binary operation.
    BinOp(BinOp, Box<Template>, Box<Template>),
    /// Comparison, possibly with an operator choice.
    Compare(CmpTemplate, Box<Template>, Box<Template>),
    /// Function call.
    Call(String, Vec<Template>),
    /// Method call.
    MethodCall(Box<Template>, String, Vec<Template>),
    /// Conditional expression.
    IfExpr(Box<Template>, Box<Template>, Box<Template>),
}

impl Template {
    /// Shorthand: reference to a bound metavariable.
    pub fn meta(name: impl Into<String>) -> Template {
        Template::Meta(name.into())
    }

    /// Shorthand: `meta + delta` (or `meta - |delta|`).
    pub fn meta_plus(name: impl Into<String>, delta: i64) -> Template {
        let base = Template::meta(name);
        if delta >= 0 {
            Template::BinOp(BinOp::Add, Box::new(base), Box::new(Template::Int(delta)))
        } else {
            Template::BinOp(BinOp::Sub, Box::new(base), Box::new(Template::Int(-delta)))
        }
    }

    /// Names of the primed metavariables used anywhere in the template.
    pub fn primed_metavars(&self, out: &mut Vec<String>) {
        match self {
            Template::MetaPrime(name) => out.push(name.clone()),
            Template::SetOf(_, items) | Template::List(items) | Template::Call(_, items) => {
                for t in items {
                    t.primed_metavars(out);
                }
            }
            Template::Index(a, b) | Template::BinOp(_, a, b) | Template::Compare(_, a, b) => {
                a.primed_metavars(out);
                b.primed_metavars(out);
            }
            Template::Slice(base, lower, upper) => {
                base.primed_metavars(out);
                if let Some(l) = lower {
                    l.primed_metavars(out);
                }
                if let Some(u) = upper {
                    u.primed_metavars(out);
                }
            }
            Template::MethodCall(recv, _, args) => {
                recv.primed_metavars(out);
                for a in args {
                    a.primed_metavars(out);
                }
            }
            Template::IfExpr(a, b, c) => {
                a.primed_metavars(out);
                b.primed_metavars(out);
                c.primed_metavars(out);
            }
            _ => {}
        }
    }
}

/// The different kinds of correction rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleKind {
    /// Rewrite any expression matching `pattern` into one of `alternatives`.
    Expr {
        /// Pattern over expressions.
        pattern: Pattern,
        /// Correction alternatives; each costs one correction when chosen.
        alternatives: Vec<Template>,
    },
    /// Rewrite the right-hand side of a constant initialisation `v = n`
    /// (the paper's `INITR`).  The bindings `v` and `n` are available.
    Init {
        /// Correction alternatives for the initialiser.
        alternatives: Vec<Template>,
    },
    /// Rewrite the expression of a `return` statement (the paper's `RETR`).
    /// The binding `a` holds the returned expression.
    Return {
        /// Correction alternatives for the returned expression.
        alternatives: Vec<Template>,
    },
    /// Optionally insert the given statements at the top of the function
    /// (used for "add the missing base case" corrections, Figure 2(e)).
    InsertTop {
        /// Statements to insert when the correction is selected.
        stmts: Vec<Stmt>,
    },
    /// Optionally delete `print` statements (used by the stdin/stdout
    /// problems, paper §6).
    DropPrint,
}

/// A correction rule: a named rewrite with an optional feedback message
/// template (placeholders `{line}`, `{original}`, `{replacement}`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Rule name (e.g. `"RANR"`).
    pub name: String,
    /// What the rule rewrites.
    pub kind: RuleKind,
    /// Optional custom feedback message template.
    pub message: Option<String>,
}

impl Rule {
    /// Creates an expression-rewrite rule.
    pub fn expr(name: impl Into<String>, pattern: Pattern, alternatives: Vec<Template>) -> Rule {
        Rule {
            name: name.into(),
            kind: RuleKind::Expr {
                pattern,
                alternatives,
            },
            message: None,
        }
    }

    /// Creates an initialisation-rewrite rule.
    pub fn init(name: impl Into<String>, alternatives: Vec<Template>) -> Rule {
        Rule {
            name: name.into(),
            kind: RuleKind::Init { alternatives },
            message: None,
        }
    }

    /// Creates a return-rewrite rule.
    pub fn ret(name: impl Into<String>, alternatives: Vec<Template>) -> Rule {
        Rule {
            name: name.into(),
            kind: RuleKind::Return { alternatives },
            message: None,
        }
    }

    /// Creates a statement-insertion rule.
    pub fn insert_top(name: impl Into<String>, stmts: Vec<Stmt>) -> Rule {
        Rule {
            name: name.into(),
            kind: RuleKind::InsertTop { stmts },
            message: None,
        }
    }

    /// Creates a print-dropping rule.
    pub fn drop_print(name: impl Into<String>) -> Rule {
        Rule {
            name: name.into(),
            kind: RuleKind::DropPrint,
            message: None,
        }
    }

    /// Attaches a custom feedback message template.
    #[must_use]
    pub fn with_message(mut self, message: impl Into<String>) -> Rule {
        self.message = Some(message.into());
        self
    }

    /// Checks the paper's well-formedness condition (Definition 1): every
    /// primed metavariable in the right-hand side must be bound strictly
    /// below the root of the left-hand side, so that recursive
    /// transformation always shrinks the term being visited.
    pub fn is_well_formed(&self) -> bool {
        let (pattern, alternatives): (Option<&Pattern>, &[Template]) = match &self.kind {
            RuleKind::Expr {
                pattern,
                alternatives,
            } => (Some(pattern), alternatives),
            RuleKind::Init { alternatives } | RuleKind::Return { alternatives } => {
                (None, alternatives)
            }
            RuleKind::InsertTop { .. } | RuleKind::DropPrint => return true,
        };
        let mut primed = Vec::new();
        for alt in alternatives {
            alt.primed_metavars(&mut primed);
        }
        if primed.is_empty() {
            return true;
        }
        match pattern {
            None => {
                // Init / Return rules bind their metavariable at the top
                // level, so priming it would not shrink the term.
                false
            }
            Some(pattern) => {
                let mut depths = HashMap::new();
                pattern.metavar_depths(1, &mut depths);
                primed
                    .iter()
                    .all(|name| depths.get(name).is_some_and(|&d| d > 1))
            }
        }
    }
}

/// A named collection of correction rules.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ErrorModel {
    /// Model name (e.g. `"computeDeriv-E"`).
    pub name: String,
    /// The correction rules, applied in order.
    pub rules: Vec<Rule>,
}

impl ErrorModel {
    /// Creates an empty error model.
    pub fn new(name: impl Into<String>) -> ErrorModel {
        ErrorModel {
            name: name.into(),
            rules: Vec::new(),
        }
    }

    /// Adds a rule (builder style).
    #[must_use]
    pub fn with_rule(mut self, rule: Rule) -> ErrorModel {
        self.rules.push(rule);
        self
    }

    /// Adds several rules (builder style).
    #[must_use]
    pub fn with_rules(mut self, rules: impl IntoIterator<Item = Rule>) -> ErrorModel {
        self.rules.extend(rules);
        self
    }

    /// Number of rules in the model.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the model has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The paper's Definition 2: a model is well-formed iff all of its rules
    /// are.
    pub fn is_well_formed(&self) -> bool {
        self.rules.iter().all(Rule::is_well_formed)
    }

    /// A model containing the first `n` rules — used for the "problems
    /// corrected with increasing error-model complexity" experiment
    /// (paper Figure 14(b), models E0..E5).
    pub fn truncated(&self, n: usize) -> ErrorModel {
        ErrorModel {
            name: format!("{}-E{}", self.name, n),
            rules: self.rules.iter().take(n).cloned().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afg_parser::parse_expr;

    #[test]
    fn matches_index_pattern_like_indr() {
        // v[a] matches poly[e]
        let pattern = Pattern::Index(
            Box::new(Pattern::AnyVar("v".into())),
            Box::new(Pattern::meta("a")),
        );
        let expr = parse_expr("poly[e]").unwrap();
        let bindings = match_expr(&pattern, &expr).expect("should match");
        assert_eq!(bindings.expr("v"), Some(&Expr::var("poly")));
        assert_eq!(bindings.expr("a"), Some(&Expr::var("e")));
        // but not a call
        assert!(match_expr(&pattern, &parse_expr("len(poly)").unwrap()).is_none());
        // and not when the base is not a variable
        assert!(match_expr(&pattern, &parse_expr("f(x)[e]").unwrap()).is_none());
    }

    #[test]
    fn matches_range_call_like_ranr() {
        let pattern = Pattern::Call(
            "range".into(),
            vec![Pattern::meta("a0"), Pattern::meta("a1")],
        );
        let expr = parse_expr("range(0, len(poly))").unwrap();
        let bindings = match_expr(&pattern, &expr).unwrap();
        assert_eq!(bindings.expr("a0"), Some(&Expr::Int(0)));
        assert!(match_expr(&pattern, &parse_expr("range(10)").unwrap()).is_none());
    }

    #[test]
    fn matches_any_comparison_like_compr() {
        let pattern = Pattern::Compare(
            None,
            Box::new(Pattern::meta("a0")),
            Box::new(Pattern::meta("a1")),
        );
        let bindings = match_expr(&pattern, &parse_expr("poly[e] == 0").unwrap()).unwrap();
        assert_eq!(bindings.cmp_op, Some(CmpOp::Eq));
        let bindings = match_expr(&pattern, &parse_expr("i >= 0").unwrap()).unwrap();
        assert_eq!(bindings.cmp_op, Some(CmpOp::Ge));
    }

    #[test]
    fn repeated_metavariables_must_bind_equal_terms() {
        // a + a matches x + x but not x + y.
        let pattern = Pattern::BinOp(
            Some(BinOp::Add),
            Box::new(Pattern::meta("a")),
            Box::new(Pattern::meta("a")),
        );
        assert!(match_expr(&pattern, &parse_expr("x + x").unwrap()).is_some());
        assert!(match_expr(&pattern, &parse_expr("x + y").unwrap()).is_none());
    }

    #[test]
    fn const_metavariable_only_matches_integers() {
        let pattern = Pattern::AnyConst("n".into());
        assert!(match_expr(&pattern, &parse_expr("3").unwrap()).is_some());
        assert!(match_expr(&pattern, &parse_expr("x").unwrap()).is_none());
        assert!(match_expr(&pattern, &parse_expr("[1]").unwrap()).is_none());
    }

    #[test]
    fn well_formedness_follows_definition_1() {
        // C1 : v[a] -> {(v[a])' + 1} is NOT well-formed (prime on the whole match).
        // We model it as priming a metavariable bound at the root.
        let bad = Rule::expr(
            "C1",
            Pattern::meta("whole"),
            vec![Template::BinOp(
                BinOp::Add,
                Box::new(Template::MetaPrime("whole".into())),
                Box::new(Template::Int(1)),
            )],
        );
        assert!(!bad.is_well_formed());

        // C2 : v[a] -> {v'[a'] + 1} is well-formed (primes on strict subterms).
        let good = Rule::expr(
            "C2",
            Pattern::Index(
                Box::new(Pattern::AnyVar("v".into())),
                Box::new(Pattern::meta("a")),
            ),
            vec![Template::BinOp(
                BinOp::Add,
                Box::new(Template::Index(
                    Box::new(Template::MetaPrime("v".into())),
                    Box::new(Template::MetaPrime("a".into())),
                )),
                Box::new(Template::Int(1)),
            )],
        );
        assert!(good.is_well_formed());

        let model = ErrorModel::new("m").with_rules([good, bad]);
        assert!(!model.is_well_formed());
    }

    #[test]
    fn truncated_models_grow_monotonically() {
        let model = ErrorModel::new("m").with_rules([
            Rule::ret("R1", vec![Template::List(vec![Template::Int(0)])]),
            Rule::init("R2", vec![Template::meta_plus("n", 1)]),
            Rule::drop_print("R3"),
        ]);
        assert_eq!(model.truncated(0).len(), 0);
        assert_eq!(model.truncated(2).len(), 2);
        assert_eq!(model.truncated(10).len(), 3);
        assert!(model.truncated(2).name.ends_with("E2"));
    }

    #[test]
    fn template_helpers() {
        assert_eq!(
            Template::meta_plus("a", 1),
            Template::BinOp(
                BinOp::Add,
                Box::new(Template::meta("a")),
                Box::new(Template::Int(1))
            )
        );
        assert_eq!(
            Template::meta_plus("a", -1),
            Template::BinOp(
                BinOp::Sub,
                Box::new(Template::meta("a")),
                Box::new(Template::Int(1))
            )
        );
    }
}
