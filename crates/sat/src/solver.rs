//! A CDCL SAT solver.
//!
//! The paper delegates its search over correction choices to the SKETCH
//! synthesizer, whose inner loop is a SAT solver.  This module provides that
//! substrate: a conflict-driven clause-learning solver with two-literal
//! watching, first-UIP conflict analysis, VSIDS-style activity ordering via
//! an indexed max-heap, phase saving, geometric restarts and **incremental
//! solving under assumptions** — the mechanism CEGISMIN uses to tighten its
//! cost bound without re-encoding (assumption literals are pseudo-decisions,
//! so every learnt clause remains a consequence of the clause database alone
//! and stays valid across `solve` calls).

use crate::literal::{Lit, Model, Var};

/// The answer to a satisfiability query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// The formula is satisfiable; a model is provided.
    Sat(Model),
    /// The formula is unsatisfiable (under the given assumptions, if any —
    /// see [`Solver::unsat_core`]).
    Unsat,
}

impl SatResult {
    /// Returns the model if the result is `Sat`.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SatResult::Sat(model) => Some(model),
            SatResult::Unsat => None,
        }
    }

    /// Whether the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

/// Counters describing the work a [`Solver`] has performed since creation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Branching decisions taken.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Conflicts analysed.
    pub conflicts: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Clauses learnt (and kept — the solver never forgets).
    pub learnts: u64,
}

const UNASSIGNED: u8 = 2;

/// Marker for a variable currently absent from the branching heap.
const NOT_IN_HEAP: usize = usize::MAX;

/// An indexed binary max-heap over variable activities.
///
/// Replaces the former O(vars) linear scan in `pick_branch_var`: decisions
/// pop the most active variable in O(log n), activity bumps sift in place,
/// and backtracking lazily re-inserts freed variables.  Variables assigned
/// by propagation stay in the heap and are discarded on pop (lazy deletion).
#[derive(Debug, Default)]
struct VarOrder {
    /// Variable indices arranged as a binary max-heap on activity.
    heap: Vec<u32>,
    /// `pos[v]` is `v`'s position in `heap`, or [`NOT_IN_HEAP`].
    pos: Vec<usize>,
}

impl VarOrder {
    fn contains(&self, var: usize) -> bool {
        self.pos[var] != NOT_IN_HEAP
    }

    fn push_new_var(&mut self, activity: &[f64]) {
        let var = self.pos.len() as u32;
        self.pos.push(NOT_IN_HEAP);
        self.insert(var, activity);
    }

    fn insert(&mut self, var: u32, activity: &[f64]) {
        if self.contains(var as usize) {
            return;
        }
        self.pos[var as usize] = self.heap.len();
        self.heap.push(var);
        self.sift_up(self.heap.len() - 1, activity);
    }

    /// Restores the heap property after `var`'s activity increased.
    fn bumped(&mut self, var: u32, activity: &[f64]) {
        let position = self.pos[var as usize];
        if position != NOT_IN_HEAP {
            self.sift_up(position, activity);
        }
    }

    fn pop(&mut self, activity: &[f64]) -> Option<u32> {
        let top = *self.heap.first()?;
        self.pos[top as usize] = NOT_IN_HEAP;
        let last = self.heap.pop().expect("non-empty heap");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a] as usize] = a;
        self.pos[self.heap[b] as usize] = b;
    }

    fn sift_up(&mut self, mut index: usize, activity: &[f64]) {
        while index > 0 {
            let parent = (index - 1) / 2;
            if activity[self.heap[index] as usize] <= activity[self.heap[parent] as usize] {
                break;
            }
            self.swap(index, parent);
            index = parent;
        }
    }

    fn sift_down(&mut self, mut index: usize, activity: &[f64]) {
        loop {
            let left = 2 * index + 1;
            let right = left + 1;
            let mut best = index;
            if left < self.heap.len()
                && activity[self.heap[left] as usize] > activity[self.heap[best] as usize]
            {
                best = left;
            }
            if right < self.heap.len()
                && activity[self.heap[right] as usize] > activity[self.heap[best] as usize]
            {
                best = right;
            }
            if best == index {
                break;
            }
            self.swap(index, best);
            index = best;
        }
    }
}

/// An incremental CDCL SAT solver.
///
/// Clauses may be added between `solve` calls; learnt clauses are kept, so
/// repeated solving (as done by the CEGIS loop, which adds blocking clauses)
/// is cheap.  [`Solver::solve_under_assumptions`] additionally decides
/// satisfiability under a conjunction of assumption literals without adding
/// them to the clause database — the CEGISMIN minimisation descent activates
/// successively tighter cost bounds this way, one encoding per grade.
#[derive(Debug, Default)]
pub struct Solver {
    /// Clause database; index 0.. are both original and learnt clauses.
    clauses: Vec<Vec<Lit>>,
    /// For each literal index, the clauses currently watching it.
    watches: Vec<Vec<usize>>,
    /// Current assignment per variable: 0 = false, 1 = true, 2 = unassigned.
    assign: Vec<u8>,
    /// Saved phase per variable (last assigned polarity).
    phase: Vec<bool>,
    /// Decision level at which each variable was assigned.
    level: Vec<u32>,
    /// Reason clause index for each assigned variable (None for decisions).
    reason: Vec<Option<usize>>,
    /// Assignment trail.
    trail: Vec<Lit>,
    /// Trail indices where each decision level starts.
    trail_lim: Vec<usize>,
    /// Next trail position to propagate.
    propagate_head: usize,
    /// VSIDS activity per variable.
    activity: Vec<f64>,
    /// Activity-ordered branching heap.
    order: VarOrder,
    /// Current activity increment.
    var_inc: f64,
    /// False once a top-level conflict has been derived.
    ok: bool,
    /// Assumption subset responsible for the last assumption-driven `Unsat`.
    last_core: Vec<Lit>,
    /// Number of conflicts seen (drives restarts).
    conflicts: u64,
    /// Statistics: number of decisions.
    decisions: u64,
    /// Statistics: number of propagations.
    propagations: u64,
    /// Statistics: number of restarts.
    restarts: u64,
    /// Statistics: number of learnt clauses retained.
    learnts: u64,
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver {
            var_inc: 1.0,
            ok: true,
            ..Solver::default()
        }
    }

    /// Number of variables currently allocated.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of clauses (original plus learnt).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Work counters since creation.
    pub fn stats(&self) -> SolverStats {
        SolverStats {
            decisions: self.decisions,
            propagations: self.propagations,
            conflicts: self.conflicts,
            restarts: self.restarts,
            learnts: self.learnts,
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let index = self.assign.len() as u32;
        self.assign.push(UNASSIGNED);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.push_new_var(&self.activity);
        Var(index)
    }

    /// Allocates `n` fresh variables and returns them.
    pub fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }

    fn lit_value(&self, lit: Lit) -> u8 {
        let v = self.assign[lit.var().index()];
        if v == UNASSIGNED {
            UNASSIGNED
        } else if lit.is_positive() {
            v
        } else {
            1 - v
        }
    }

    /// Adds a clause.  Returns `false` if the clause makes the formula
    /// trivially unsatisfiable (empty clause, or a unit clause conflicting
    /// with the top-level assignment).
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        if !self.ok {
            return false;
        }
        // Adding clauses is only allowed at decision level 0.
        self.cancel_until(0);

        // Normalise: drop duplicate literals, detect tautologies.
        let mut clause: Vec<Lit> = Vec::with_capacity(lits.len());
        for &lit in lits {
            if clause.contains(&lit.negated()) {
                return true; // tautology: x ∨ ¬x — trivially satisfied
            }
            if !clause.contains(&lit) {
                clause.push(lit);
            }
        }
        // Remove literals already false at level 0; a clause already true at
        // level 0 can be dropped.
        clause.retain(|&lit| self.lit_value(lit) != 0 || self.level[lit.var().index()] != 0);
        if clause
            .iter()
            .any(|&lit| self.lit_value(lit) == 1 && self.level[lit.var().index()] == 0)
        {
            return true;
        }

        match clause.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                if self.lit_value(clause[0]) == 0 {
                    self.ok = false;
                    return false;
                }
                if self.lit_value(clause[0]) == UNASSIGNED {
                    self.enqueue(clause[0], None);
                }
                if self.propagate().is_some() {
                    self.ok = false;
                    return false;
                }
                true
            }
            _ => {
                let index = self.clauses.len();
                self.watches[clause[0].negated().index()].push(index);
                self.watches[clause[1].negated().index()].push(index);
                self.clauses.push(clause);
                true
            }
        }
    }

    /// Adds the clause `a → b`, i.e. `¬a ∨ b`.
    pub fn add_implication(&mut self, a: Lit, b: Lit) -> bool {
        self.add_clause(&[a.negated(), b])
    }

    /// Adds clauses forcing exactly one of `lits` to be true.
    pub fn add_exactly_one(&mut self, lits: &[Lit]) -> bool {
        if !self.add_clause(lits) {
            return false;
        }
        for i in 0..lits.len() {
            for j in (i + 1)..lits.len() {
                if !self.add_clause(&[lits[i].negated(), lits[j].negated()]) {
                    return false;
                }
            }
        }
        true
    }

    fn enqueue(&mut self, lit: Lit, reason: Option<usize>) {
        let var = lit.var().index();
        debug_assert_eq!(self.assign[var], UNASSIGNED);
        self.assign[var] = u8::from(lit.is_positive());
        self.phase[var] = lit.is_positive();
        self.level[var] = self.trail_lim.len() as u32;
        self.reason[var] = reason;
        self.trail.push(lit);
    }

    /// Unit propagation.  Returns the index of a conflicting clause, if any.
    fn propagate(&mut self) -> Option<usize> {
        while self.propagate_head < self.trail.len() {
            let lit = self.trail[self.propagate_head];
            self.propagate_head += 1;
            self.propagations += 1;

            // Clauses watching ¬lit need attention now that lit became true.
            let mut watch_list = std::mem::take(&mut self.watches[lit.index()]);
            let mut i = 0;
            while i < watch_list.len() {
                let clause_index = watch_list[i];
                match self.examine_clause(clause_index, lit) {
                    WatchOutcome::KeepWatching => {
                        i += 1;
                    }
                    WatchOutcome::Rewatched => {
                        watch_list.swap_remove(i);
                    }
                    WatchOutcome::Conflict => {
                        // Put the remaining watches back before returning.
                        self.watches[lit.index()].append(&mut watch_list);
                        return Some(clause_index);
                    }
                }
            }
            self.watches[lit.index()].extend(watch_list);
        }
        None
    }

    fn examine_clause(&mut self, clause_index: usize, false_lit: Lit) -> WatchOutcome {
        // The literal that just became false is ¬false_lit... i.e. the
        // watched literal equal to false_lit.negated().
        let watched = false_lit.negated();
        // Ensure the falsified literal is at position 1.
        if self.clauses[clause_index][0] == watched {
            self.clauses[clause_index].swap(0, 1);
        }
        debug_assert_eq!(self.clauses[clause_index][1], watched);

        // If the other watched literal is already true the clause is
        // satisfied; keep watching.
        let first = self.clauses[clause_index][0];
        if self.lit_value(first) == 1 {
            return WatchOutcome::KeepWatching;
        }

        // Look for a new literal to watch.
        for k in 2..self.clauses[clause_index].len() {
            let candidate = self.clauses[clause_index][k];
            if self.lit_value(candidate) != 0 {
                self.clauses[clause_index].swap(1, k);
                self.watches[candidate.negated().index()].push(clause_index);
                return WatchOutcome::Rewatched;
            }
        }

        // Clause is unit or conflicting.
        if self.lit_value(first) == 0 {
            WatchOutcome::Conflict
        } else {
            self.enqueue(first, Some(clause_index));
            WatchOutcome::KeepWatching
        }
    }

    fn bump_activity(&mut self, var: Var) {
        self.activity[var.index()] += self.var_inc;
        if self.activity[var.index()] > 1e100 {
            // Rescaling multiplies every activity by the same constant, so
            // the heap order is untouched.
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.bumped(var.index() as u32, &self.activity);
    }

    /// First-UIP conflict analysis.  Returns the learnt clause and the level
    /// to backtrack to.
    fn analyze(&mut self, conflict: usize) -> (Vec<Lit>, u32) {
        let current_level = self.trail_lim.len() as u32;
        let mut learnt: Vec<Lit> = Vec::new();
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0usize;
        let mut lit: Option<Lit> = None;
        let mut reason_clause = conflict;
        let mut trail_index = self.trail.len();

        loop {
            let clause = self.clauses[reason_clause].clone();
            // Skip the asserting literal itself when walking a reason clause.
            let skip = lit;
            for &q in &clause {
                if Some(q) == skip {
                    continue;
                }
                let v = q.var();
                if !seen[v.index()] && self.level[v.index()] > 0 {
                    seen[v.index()] = true;
                    self.bump_activity(v);
                    if self.level[v.index()] >= current_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next literal on the trail (at the current level) that
            // participates in the conflict.
            loop {
                trail_index -= 1;
                let trail_lit = self.trail[trail_index];
                if seen[trail_lit.var().index()] {
                    lit = Some(trail_lit);
                    break;
                }
            }
            let asserting = lit.expect("conflict analysis found a literal");
            counter -= 1;
            seen[asserting.var().index()] = false;
            if counter == 0 {
                // First UIP found; it is asserted negated in the learnt clause.
                learnt.insert(0, asserting.negated());
                break;
            }
            reason_clause = self.reason[asserting.var().index()]
                .expect("non-decision literal must have a reason");
        }

        // Backtrack level = highest level among the other learnt literals.
        // That literal is moved to position 1 so that both watched literals
        // of the learnt clause are the last to become unassigned when
        // backtracking, preserving the watching invariant.
        let mut backtrack_level = 0;
        let mut second_watch = 1;
        for (offset, l) in learnt.iter().enumerate().skip(1) {
            let lvl = self.level[l.var().index()];
            if lvl > backtrack_level {
                backtrack_level = lvl;
                second_watch = offset;
            }
        }
        if learnt.len() > 1 {
            learnt.swap(1, second_watch);
        }
        (learnt, backtrack_level)
    }

    /// Computes the subset of assumptions responsible for forcing the
    /// assumption literal `failed` false (MiniSat's `analyzeFinal`): walks
    /// the implication graph from `¬failed` back to the pseudo-decisions.
    /// The result — `failed` plus every assumption reached — is a conjunction
    /// that is unsatisfiable with the clause database alone.
    fn analyze_final(&mut self, failed: Lit) {
        self.last_core.clear();
        self.last_core.push(failed);
        if self.trail_lim.is_empty() {
            return;
        }
        let mut seen = vec![false; self.num_vars()];
        seen[failed.var().index()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let lit = self.trail[i];
            if !seen[lit.var().index()] {
                continue;
            }
            match self.reason[lit.var().index()] {
                // A pseudo-decision above level 0 is an assumption.
                None => self.last_core.push(lit),
                Some(clause_index) => {
                    for k in 0..self.clauses[clause_index].len() {
                        let q = self.clauses[clause_index][k];
                        if q.var() != lit.var() && self.level[q.var().index()] > 0 {
                            seen[q.var().index()] = true;
                        }
                    }
                }
            }
            seen[lit.var().index()] = false;
        }
    }

    /// The subset of assumption literals responsible for the most recent
    /// `Unsat` answer of [`Solver::solve_under_assumptions`].  Their
    /// conjunction is unsatisfiable together with the clause database; an
    /// empty core means the clauses are unsatisfiable on their own.
    pub fn unsat_core(&self) -> &[Lit] {
        &self.last_core
    }

    fn cancel_until(&mut self, target_level: u32) {
        while self.trail_lim.len() as u32 > target_level {
            let start = self.trail_lim.pop().expect("non-empty trail_lim");
            while self.trail.len() > start {
                let lit = self.trail.pop().expect("non-empty trail");
                let var = lit.var().index();
                self.assign[var] = UNASSIGNED;
                self.reason[var] = None;
                // Lazy heap re-insertion: freed variables become branchable
                // again.
                self.order.insert(var as u32, &self.activity);
            }
        }
        self.propagate_head = self.propagate_head.min(self.trail.len());
    }

    /// Pops the most active unassigned variable (lazy deletion: entries
    /// assigned by propagation since insertion are discarded on the way).
    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(var) = self.order.pop(&self.activity) {
            if self.assign[var as usize] == UNASSIGNED {
                return Some(Var(var));
            }
        }
        None
    }

    /// Decides satisfiability of the current clause set.
    pub fn solve(&mut self) -> SatResult {
        self.solve_under_assumptions(&[])
    }

    /// Decides satisfiability of the current clause set under the
    /// conjunction of `assumptions`.
    ///
    /// Assumptions are applied as pseudo-decisions (one per decision level,
    /// before any branching), so nothing is added to the clause database and
    /// every clause learnt during the search remains valid for later calls —
    /// this is what makes CEGISMIN's repeated bound tightening incremental.
    /// When the answer is `Unsat` because of the assumptions,
    /// [`Solver::unsat_core`] names the responsible subset and the solver
    /// stays usable; an `Unsat` with an empty core means the clauses
    /// themselves are contradictory and the solver is dead.
    pub fn solve_under_assumptions(&mut self, assumptions: &[Lit]) -> SatResult {
        self.last_core.clear();
        if !self.ok {
            return SatResult::Unsat;
        }
        self.cancel_until(0);
        if self.propagate().is_some() {
            self.ok = false;
            return SatResult::Unsat;
        }

        let mut conflicts_since_restart = 0u64;
        let mut restart_limit = 100u64;

        loop {
            if let Some(conflict) = self.propagate() {
                self.conflicts += 1;
                conflicts_since_restart += 1;
                if self.trail_lim.is_empty() {
                    self.ok = false;
                    return SatResult::Unsat;
                }
                let (learnt, backtrack_level) = self.analyze(conflict);
                self.cancel_until(backtrack_level);
                self.var_inc *= 1.05;
                if learnt.len() == 1 {
                    if self.lit_value(learnt[0]) == 0 {
                        // False at level 0: contradictory clause database.
                        self.ok = false;
                        return SatResult::Unsat;
                    }
                    if self.lit_value(learnt[0]) == UNASSIGNED {
                        self.enqueue(learnt[0], None);
                    }
                } else {
                    let index = self.clauses.len();
                    self.watches[learnt[0].negated().index()].push(index);
                    self.watches[learnt[1].negated().index()].push(index);
                    let asserting = learnt[0];
                    self.clauses.push(learnt);
                    self.learnts += 1;
                    self.enqueue(asserting, Some(index));
                }
            } else {
                if conflicts_since_restart >= restart_limit {
                    conflicts_since_restart = 0;
                    restart_limit = restart_limit.saturating_mul(3) / 2;
                    self.restarts += 1;
                    // Assumptions are re-applied below, one per iteration.
                    self.cancel_until(0);
                    continue;
                }
                // Apply (or re-apply, after a restart or deep backjump) the
                // next pending assumption as a pseudo-decision.
                if self.trail_lim.len() < assumptions.len() {
                    let lit = assumptions[self.trail_lim.len()];
                    match self.lit_value(lit) {
                        // Already entailed: push an empty decision level so
                        // assumption i always sits at level ≤ i + 1.
                        1 => self.trail_lim.push(self.trail.len()),
                        0 => {
                            // The clause database (plus earlier assumptions)
                            // forces this assumption false: unsat under
                            // assumptions, solver still healthy.
                            self.analyze_final(lit);
                            self.cancel_until(0);
                            return SatResult::Unsat;
                        }
                        _ => {
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(lit, None);
                        }
                    }
                    continue;
                }
                match self.pick_branch_var() {
                    None => {
                        // All variables assigned: build the model.
                        let values = self.assign.iter().map(|&v| v == 1).collect();
                        let model = Model { values };
                        // Leave the solver reusable for incremental calls.
                        self.cancel_until(0);
                        return SatResult::Sat(model);
                    }
                    Some(var) => {
                        self.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let phase = self.phase[var.index()];
                        let lit = if phase {
                            var.positive()
                        } else {
                            var.negative()
                        };
                        self.enqueue(lit, None);
                    }
                }
            }
        }
    }
}

enum WatchOutcome {
    KeepWatching,
    Rewatched,
    Conflict,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(solver: &mut Solver, n: usize) -> Vec<Var> {
        solver.new_vars(n)
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        assert!(s.add_clause(&[v[0].positive(), v[1].positive()]));
        assert!(s.solve().is_sat());

        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        assert!(s.add_clause(&[v[0].positive()]));
        assert!(!s.add_clause(&[v[0].negative()]));
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        let _ = lits(&mut s, 3);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn model_satisfies_all_clauses() {
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        let clauses = vec![
            vec![v[0].positive(), v[1].positive()],
            vec![v[0].negative(), v[2].positive()],
            vec![v[1].negative(), v[3].positive()],
            vec![v[2].negative(), v[3].negative()],
        ];
        for c in &clauses {
            assert!(s.add_clause(c));
        }
        let result = s.solve();
        let model = result.model().expect("satisfiable");
        for c in &clauses {
            assert!(
                c.iter().any(|&l| model.lit_is_true(l)),
                "clause {c:?} unsatisfied"
            );
        }
    }

    #[test]
    fn implication_chain_propagates() {
        let mut s = Solver::new();
        let v = lits(&mut s, 5);
        assert!(s.add_clause(&[v[0].positive()]));
        for i in 0..4 {
            assert!(s.add_implication(v[i].positive(), v[i + 1].positive()));
        }
        let result = s.solve();
        let model = result.model().unwrap();
        for var in &v {
            assert!(model.value(*var));
        }
    }

    #[test]
    fn exactly_one_constraint() {
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        let all: Vec<Lit> = v.iter().map(|x| x.positive()).collect();
        assert!(s.add_exactly_one(&all));
        let result = s.solve();
        let model = result.model().unwrap();
        let count = v.iter().filter(|x| model.value(**x)).count();
        assert_eq!(count, 1);
    }

    #[test]
    fn pigeonhole_3_pigeons_2_holes_is_unsat() {
        // p_{i,j}: pigeon i sits in hole j.
        let mut s = Solver::new();
        let mut p = vec![vec![]; 3];
        for row in p.iter_mut() {
            *row = s.new_vars(2);
        }
        // Every pigeon sits somewhere.
        for row in &p {
            assert!(s.add_clause(&[row[0].positive(), row[1].positive()]));
        }
        // No two pigeons share a hole.
        #[allow(clippy::needless_range_loop)]
        for hole in 0..2usize {
            for i in 0..3 {
                for k in (i + 1)..3 {
                    assert!(s.add_clause(&[p[i][hole].negative(), p[k][hole].negative()]));
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn incremental_blocking_enumerates_all_models() {
        // 3 free variables -> 8 models; block each model as it is found.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        // A tautological-ish clause mentioning the vars so they are branched on.
        assert!(s.add_clause(&[v[0].positive(), v[0].negative()]));
        assert!(s.add_clause(&[v[1].positive(), v[1].negative()]));
        assert!(s.add_clause(&[v[2].positive(), v[2].negative()]));
        let mut count = 0;
        loop {
            match s.solve() {
                SatResult::Unsat => break,
                SatResult::Sat(model) => {
                    count += 1;
                    assert!(count <= 8, "enumerated more models than exist");
                    let blocking: Vec<Lit> = v
                        .iter()
                        .map(|&var| {
                            if model.value(var) {
                                var.negative()
                            } else {
                                var.positive()
                            }
                        })
                        .collect();
                    s.add_clause(&blocking);
                }
            }
        }
        assert_eq!(count, 8);
    }

    #[test]
    fn unsat_formula_with_learning() {
        // (a ∨ b) ∧ (a ∨ ¬b) ∧ (¬a ∨ b) ∧ (¬a ∨ ¬b)
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        assert!(s.add_clause(&[v[0].positive(), v[1].positive()]));
        assert!(s.add_clause(&[v[0].positive(), v[1].negative()]));
        assert!(s.add_clause(&[v[0].negative(), v[1].positive()]));
        // The last clause may already be decided unsat at add time or at solve time.
        let _ = s.add_clause(&[v[0].negative(), v[1].negative()]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn duplicate_and_tautological_clauses_are_harmless() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        assert!(s.add_clause(&[v[0].positive(), v[0].positive(), v[1].positive()]));
        assert!(s.add_clause(&[v[0].positive(), v[0].negative()]));
        assert!(s.solve().is_sat());
    }

    #[test]
    fn stats_accumulate() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause(&[v[0].positive(), v[1].positive(), v[2].positive()]);
        let _ = s.solve();
        let stats = s.stats();
        assert!(stats.decisions + stats.propagations > 0);
    }

    #[test]
    fn assumptions_restrict_models_without_adding_clauses() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        assert!(s.add_clause(&[v[0].positive(), v[1].positive()]));
        let clauses_before = s.num_clauses();

        // Under ¬a the only way to satisfy a ∨ b is b.
        let result = s.solve_under_assumptions(&[v[0].negative()]);
        let model = result.model().expect("sat under ¬a");
        assert!(!model.value(v[0]));
        assert!(model.value(v[1]));

        // The assumption was temporary: a is free again.
        let result = s.solve_under_assumptions(&[v[0].positive()]);
        assert!(result.model().expect("sat under a").value(v[0]));
        assert_eq!(s.num_clauses(), clauses_before);
    }

    #[test]
    fn failed_assumptions_yield_a_core_and_a_reusable_solver() {
        // a → b, so assuming {a, ¬b} is contradictory while the clause
        // database stays satisfiable.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        assert!(s.add_implication(v[0].positive(), v[1].positive()));

        let result =
            s.solve_under_assumptions(&[v[2].positive(), v[0].positive(), v[1].negative()]);
        assert_eq!(result, SatResult::Unsat);
        let core = s.unsat_core().to_vec();
        assert!(!core.is_empty(), "assumption failure must produce a core");
        // The irrelevant assumption on v[2] is not to blame.
        assert!(!core.contains(&v[2].positive()), "core {core:?}");
        assert!(core.contains(&v[1].negative()) || core.contains(&v[0].positive()));

        // The solver survives: the same query without the bad assumption
        // succeeds, as does an unconditional solve.
        assert!(s.solve_under_assumptions(&[v[0].positive()]).is_sat());
        assert!(s.solve().is_sat());
    }

    #[test]
    fn directly_conflicting_assumptions_are_detected() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        let result = s.solve_under_assumptions(&[v[0].positive(), v[0].negative()]);
        assert_eq!(result, SatResult::Unsat);
        let core = s.unsat_core();
        assert!(core.contains(&v[0].positive()) && core.contains(&v[0].negative()));
        assert!(s.solve().is_sat(), "solver must remain usable");
    }

    #[test]
    fn unsat_clause_database_reports_an_empty_core() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        assert!(s.add_clause(&[v[0].positive()]));
        let _ = s.add_clause(&[v[0].negative()]);
        assert_eq!(
            s.solve_under_assumptions(&[v[0].positive()]),
            SatResult::Unsat
        );
        assert!(s.unsat_core().is_empty());
    }

    #[test]
    fn learnt_clauses_survive_assumption_solves() {
        // A pigeonhole core reachable only when the `enable` assumption is
        // on.  Conflicts analysed under the assumption must produce learnt
        // clauses that are sound without it (assumptions are decisions, so
        // learning never depends on them being true).
        let mut s = Solver::new();
        let enable = s.new_var();
        let mut p = vec![vec![]; 3];
        for row in p.iter_mut() {
            *row = s.new_vars(2);
        }
        for row in &p {
            assert!(s.add_clause(&[enable.negative(), row[0].positive(), row[1].positive()]));
        }
        #[allow(clippy::needless_range_loop)]
        for hole in 0..2usize {
            for i in 0..3 {
                for k in (i + 1)..3 {
                    assert!(s.add_clause(&[
                        enable.negative(),
                        p[i][hole].negative(),
                        p[k][hole].negative()
                    ]));
                }
            }
        }
        assert_eq!(
            s.solve_under_assumptions(&[enable.positive()]),
            SatResult::Unsat
        );
        assert_eq!(s.unsat_core(), &[enable.positive()]);
        let learnts_after_first = s.stats().learnts;

        // Re-solving the same query reuses what was learnt: at least it must
        // not lose soundness, and without the assumption the formula is sat.
        assert_eq!(
            s.solve_under_assumptions(&[enable.positive()]),
            SatResult::Unsat
        );
        assert!(s.stats().learnts >= learnts_after_first);
        let model = s.solve().model().cloned().expect("sat without assumption");
        assert!(!model.value(enable));
    }
}
