//! Operators of the MPY language.
//!
//! The error-model language EML can rewrite operators as well as operands
//! (paper Figure 8, rule `COMPR` replaces a comparison operator by any of
//! `{<, >, ≤, ≥, ==, ≠}`), so each operator enum exposes an `all()`
//! enumeration and a `symbol()` used by the pretty-printer and the feedback
//! generator.

use std::fmt;

/// Binary arithmetic operators (`Arith Op` in paper Figure 6(a)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BinOp {
    /// `+` — integer addition, list/str/tuple concatenation.
    Add,
    /// `-` — integer subtraction.
    Sub,
    /// `*` — integer multiplication, sequence repetition.
    Mul,
    /// `/` — integer division (Python 2 semantics: floor on ints).
    Div,
    /// `//` — floor division.
    FloorDiv,
    /// `%` — modulo.
    Mod,
    /// `**` — exponentiation.
    Pow,
}

impl BinOp {
    /// All arithmetic operators, in a fixed order.
    pub fn all() -> &'static [BinOp] {
        &[
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::FloorDiv,
            BinOp::Mod,
            BinOp::Pow,
        ]
    }

    /// The surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::FloorDiv => "//",
            BinOp::Mod => "%",
            BinOp::Pow => "**",
        }
    }

    /// Binding strength used by the pretty printer (higher binds tighter).
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Add | BinOp::Sub => 4,
            BinOp::Mul | BinOp::Div | BinOp::FloorDiv | BinOp::Mod => 5,
            BinOp::Pow => 6,
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Comparison operators (`Comp Op` in paper Figure 6(a)), extended with the
/// membership tests `in` / `not in` which several benchmarks
/// (hangman1/hangman2) rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `in`
    In,
    /// `not in`
    NotIn,
}

impl CmpOp {
    /// All comparison operators.
    pub fn all() -> &'static [CmpOp] {
        &[
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
            CmpOp::In,
            CmpOp::NotIn,
        ]
    }

    /// The relational operators only — the set `{<, >, ≤, ≥, ==, ≠}` that the
    /// paper's `COMPR` correction rule ranges over.
    pub fn relational() -> &'static [CmpOp] {
        &[
            CmpOp::Lt,
            CmpOp::Gt,
            CmpOp::Le,
            CmpOp::Ge,
            CmpOp::Eq,
            CmpOp::Ne,
        ]
    }

    /// The surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::In => "in",
            CmpOp::NotIn => "not in",
        }
    }

    /// The comparison with its arguments swapped (`a < b` ⇔ `b > a`), used by
    /// normalisation in tests.
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            other => other,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Boolean connectives (`Bool Op` in paper Figure 6(a)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BoolOp {
    /// `and`
    And,
    /// `or`
    Or,
}

impl BoolOp {
    /// All boolean connectives.
    pub fn all() -> &'static [BoolOp] {
        &[BoolOp::And, BoolOp::Or]
    }

    /// The surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BoolOp::And => "and",
            BoolOp::Or => "or",
        }
    }
}

impl fmt::Display for BoolOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UnaryOp {
    /// Arithmetic negation `-e`.
    Neg,
    /// Logical negation `not e`.
    Not,
}

impl UnaryOp {
    /// The surface syntax of the operator (including trailing space for `not`).
    pub fn symbol(self) -> &'static str {
        match self {
            UnaryOp::Neg => "-",
            UnaryOp::Not => "not ",
        }
    }
}

impl fmt::Display for UnaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_round_trip_through_display() {
        for op in BinOp::all() {
            assert_eq!(format!("{op}"), op.symbol());
        }
        for op in CmpOp::all() {
            assert_eq!(format!("{op}"), op.symbol());
        }
        for op in BoolOp::all() {
            assert_eq!(format!("{op}"), op.symbol());
        }
    }

    #[test]
    fn relational_subset_of_all() {
        for op in CmpOp::relational() {
            assert!(CmpOp::all().contains(op));
        }
        assert_eq!(CmpOp::relational().len(), 6);
    }

    #[test]
    fn flipped_is_involutive_on_relationals() {
        for &op in CmpOp::relational() {
            assert_eq!(op.flipped().flipped(), op);
        }
    }

    #[test]
    fn precedence_orders_mul_above_add() {
        assert!(BinOp::Mul.precedence() > BinOp::Add.precedence());
        assert!(BinOp::Pow.precedence() > BinOp::Mul.precedence());
    }
}
