//! Feedback data structures and natural-language rendering.
//!
//! The paper's feedback (Figure 2(d)–(f)) consists of up to four pieces of
//! information per correction — the line number, the problematic expression,
//! the sub-expression to modify, and the new value — and a *feedback-level*
//! parameter controls how many of them the student is shown (§2).

use std::fmt;
use std::time::Duration;

use afg_eml::{ChoiceAssignment, ChoiceInfo, ChoiceProgram};
use afg_synth::SynthesisStats;

/// How much of each correction is revealed to the student (paper §2: "The
/// feedback generator is parameterized with a feedback-level parameter").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeedbackLevel {
    /// Include the line number of the error.
    pub location: bool,
    /// Include the problematic expression on that line.
    pub expression: bool,
    /// Include the sub-expression that needs to change.
    pub subexpression: bool,
    /// Include the corrected value of the sub-expression.
    pub replacement: bool,
}

impl FeedbackLevel {
    /// Full feedback: everything the tool knows (the level used in Figure 2).
    pub fn full() -> FeedbackLevel {
        FeedbackLevel {
            location: true,
            expression: true,
            subexpression: true,
            replacement: true,
        }
    }

    /// Only the location of the error ("look at line 6").
    pub fn location_only() -> FeedbackLevel {
        FeedbackLevel {
            location: true,
            expression: false,
            subexpression: false,
            replacement: false,
        }
    }

    /// Location plus the problematic expression, but not the fix — a hint
    /// level instructors commonly prefer.
    pub fn hint() -> FeedbackLevel {
        FeedbackLevel {
            location: true,
            expression: true,
            subexpression: true,
            replacement: false,
        }
    }
}

impl Default for FeedbackLevel {
    fn default() -> FeedbackLevel {
        FeedbackLevel::full()
    }
}

/// One correction: the information extracted from one non-default choice of
/// the minimal solution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Correction {
    /// 1-based source line of the statement being corrected.
    pub line: u32,
    /// Name of the correction rule responsible (e.g. `"RANR"`).
    pub rule: String,
    /// The original (problematic) fragment.
    pub original: String,
    /// The corrected fragment.
    pub replacement: String,
    /// Rendered natural-language message.
    pub message: String,
}

/// The feedback produced for one incorrect submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Feedback {
    /// The corrections, in source-line order.
    pub corrections: Vec<Correction>,
    /// Total number of corrections (the paper's `totalCost`).
    pub cost: usize,
    /// Time spent grading this submission.
    pub elapsed: Duration,
    /// Synthesizer statistics.
    pub stats: SynthesisStats,
}

impl Feedback {
    /// Renders the feedback as the paper presents it:
    /// "The program requires N change(s):" followed by one bullet per
    /// correction.
    pub fn render(&self, level: FeedbackLevel) -> String {
        let mut out = format!(
            "The program requires {} change{}:\n",
            self.cost,
            if self.cost == 1 { "" } else { "s" }
        );
        for correction in &self.corrections {
            out.push_str("  * ");
            out.push_str(&render_correction(correction, level));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Feedback {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(FeedbackLevel::full()))
    }
}

fn render_correction(correction: &Correction, level: FeedbackLevel) -> String {
    if level.location && level.expression && level.subexpression && level.replacement {
        return correction.message.clone();
    }
    let mut parts = Vec::new();
    if level.location {
        parts.push(format!("look at line {}", correction.line));
    }
    if level.expression || level.subexpression {
        parts.push(format!(
            "the expression {} is not right",
            correction.original
        ));
    }
    if level.replacement {
        parts.push(format!("it should be {}", correction.replacement));
    }
    if parts.is_empty() {
        parts.push("one more change is needed".to_string());
    }
    let mut sentence = parts.join("; ");
    if let Some(first) = sentence.get_mut(0..1) {
        first.make_ascii_uppercase();
    }
    sentence
}

/// Builds the corrections for a minimal solution by mapping each non-default
/// choice back to its [`ChoiceInfo`] (paper §4.3: "Mapping SKETCH solution to
/// generate feedback").
pub fn corrections_from_assignment(
    program: &ChoiceProgram,
    assignment: &ChoiceAssignment,
) -> Vec<Correction> {
    let mut corrections: Vec<Correction> = assignment
        .non_default()
        .filter_map(|(id, option)| {
            let info = program.choice_info(id)?;
            Some(build_correction(info, option))
        })
        .collect();
    corrections.sort_by_key(|c| c.line);
    corrections
}

fn build_correction(info: &ChoiceInfo, option: usize) -> Correction {
    let replacement = info
        .options
        .get(option)
        .cloned()
        .unwrap_or_else(|| "<unknown>".to_string());
    let message = match &info.message {
        Some(template) => template
            .replace("{line}", &info.line.to_string())
            .replace("{original}", &info.original)
            .replace("{replacement}", &replacement),
        None => default_message(info, &replacement),
    };
    Correction {
        line: info.line,
        rule: info.rule.clone(),
        original: info.original.clone(),
        replacement,
        message,
    }
}

/// The fallback message, phrased like the paper's generated feedback.
fn default_message(info: &ChoiceInfo, replacement: &str) -> String {
    // Recognise the common "increment by one" shape for a friendlier message.
    if replacement == format!("{} + 1", info.original) {
        return format!(
            "In the expression {} in line {}, increment {} by 1",
            info.original, info.line, info.original
        );
    }
    if replacement == format!("{} - 1", info.original) {
        return format!(
            "In the expression {} in line {}, decrement {} by 1",
            info.original, info.line, info.original
        );
    }
    format!(
        "In the expression {} in line {}, replace {} with {}",
        info.original, info.line, info.original, replacement
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use afg_eml::ChoiceId;

    fn info(message: Option<&str>) -> ChoiceInfo {
        ChoiceInfo {
            id: ChoiceId(0),
            line: 6,
            rule: "RANR".into(),
            original: "0".into(),
            options: vec!["0".into(), "0 + 1".into(), "1".into()],
            message: message.map(str::to_string),
        }
    }

    #[test]
    fn default_message_recognises_increments() {
        let correction = build_correction(&info(None), 1);
        assert_eq!(
            correction.message,
            "In the expression 0 in line 6, increment 0 by 1"
        );
        let correction = build_correction(&info(None), 2);
        assert_eq!(
            correction.message,
            "In the expression 0 in line 6, replace 0 with 1"
        );
    }

    #[test]
    fn custom_templates_substitute_placeholders() {
        let correction = build_correction(
            &info(Some("In line {line}, change {original} to {replacement}")),
            2,
        );
        assert_eq!(correction.message, "In line 6, change 0 to 1");
    }

    #[test]
    fn feedback_levels_control_detail() {
        let feedback = Feedback {
            corrections: vec![build_correction(&info(None), 2)],
            cost: 1,
            elapsed: Duration::from_millis(10),
            stats: SynthesisStats::default(),
        };
        let full = feedback.render(FeedbackLevel::full());
        assert!(full.contains("The program requires 1 change:"));
        assert!(full.contains("replace 0 with 1"));

        let location = feedback.render(FeedbackLevel::location_only());
        assert!(location.contains("line 6"));
        assert!(!location.contains("replace"));

        let hint = feedback.render(FeedbackLevel::hint());
        assert!(hint.contains("is not right"));
        assert!(!hint.contains("it should be"));
    }

    #[test]
    fn plural_rendering() {
        let feedback = Feedback {
            corrections: vec![
                build_correction(&info(None), 1),
                build_correction(&info(None), 2),
            ],
            cost: 2,
            elapsed: Duration::ZERO,
            stats: SynthesisStats::default(),
        };
        assert!(feedback
            .to_string()
            .starts_with("The program requires 2 changes:"));
    }
}
