//! `sweepbench` — microbenchmark of the verification-sweep core, tree
//! walker vs compiled bytecode VM.
//!
//! ```text
//! cargo run --release -p afg-bench --bin sweepbench -- \
//!     [--problem ID] [--mutants N] [--iters N] [--seed S] [--json]
//! ```
//!
//! For every benchmark problem the driver derives a seeded set of buggy
//! mutants, applies the problem's error model to get choice programs, and
//! sweeps an identical set of candidate assignments over the full bounded
//! input deck under both [`SweepMode`]s — same oracle inputs, same
//! assignments, same fuel limits, so the only variable is the execution
//! back end.  Before timing anything it asserts both modes return the
//! same counterexample for every assignment (the cheap end of the
//! differential suite, run on every invocation).
//!
//! With `--json` a single JSON document lands on stdout — the shape CI
//! asserts on (`compiled.sweeps_per_sec >= tree.sweeps_per_sec`) and the
//! shape checked into `BENCH_sweep.json` as the perf baseline.

use std::time::{Duration, Instant};

use afg_corpus::rng::StdRng;
use afg_corpus::{mutate_program, problems, Problem};
use afg_eml::{apply_error_model, ChoiceAssignment, ChoiceProgram};
use afg_interp::{EquivalenceConfig, EquivalenceOracle, SweepMode};
use afg_json::{Json, ToJson};

/// Assignment sets larger than this are truncated: single-site flips grow
/// with the error model, and the benchmark wants comparable per-problem
/// work, not the full candidate space.
const MAX_ASSIGNMENTS: usize = 32;

struct Options {
    problem: Option<String>,
    mutants: usize,
    iters: usize,
    seed: u64,
    json: bool,
}

fn usage() -> String {
    "usage: sweepbench [--problem ID] [--mutants N] [--iters N] [--seed S] [--json]\n\
     \n\
     --problem ID   single benchmark problem (default: all of them)\n\
     --mutants N    seeded buggy mutants per problem (default 4)\n\
     --iters N      timed repetitions of the assignment sweep (default 8)\n\
     --seed S       mutation RNG seed (default 20130616)\n\
     --json         machine-readable JSON document on stdout"
        .to_string()
}

fn parse_options() -> Options {
    let mut options = Options {
        problem: None,
        mutants: 4,
        iters: 8,
        seed: 20130616,
        json: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    let exit_usage = |message: &str| -> ! {
        eprintln!("{message}\n\n{}", usage());
        std::process::exit(2)
    };
    let number = |flag: &str, value: Option<&String>| -> u64 {
        match value.and_then(|v| v.parse().ok()) {
            Some(n) => n,
            None => exit_usage(&format!("option '{flag}' expects a non-negative integer")),
        }
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--problem" => match iter.next() {
                Some(id) => options.problem = Some(id.clone()),
                None => exit_usage("option '--problem' requires a value"),
            },
            "--mutants" => options.mutants = number(arg, iter.next()).max(1) as usize,
            "--iters" => options.iters = number(arg, iter.next()).max(1) as usize,
            "--seed" => options.seed = number(arg, iter.next()),
            "--json" => options.json = true,
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => exit_usage(&format!("unknown option '{other}'")),
        }
    }
    options
}

/// Seeded buggy choice programs for one problem: each mutation seed gets
/// one injected mistake, then the problem's error model is applied.
fn choice_programs(problem: &Problem, mutants: usize, seed: u64) -> Vec<ChoiceProgram> {
    let seeds = problem.mutation_seeds();
    let mut programs = Vec::new();
    for m in 0..mutants {
        let base = seeds[m % seeds.len()];
        let mut program = afg_parser::parse_program(base).expect("corpus seeds parse");
        let mut rng = StdRng::seed_from_u64(seed ^ ((m as u64 + 1) << 16));
        mutate_program(&mut program, 1, &mut rng);
        if let Ok(cp) = apply_error_model(&program, Some(problem.entry), &problem.model) {
            if !cp.choices.is_empty() {
                programs.push(cp);
            }
        }
    }
    programs
}

/// The deterministic candidate set a benchmark sweeps: the all-defaults
/// assignment plus every single-site flip to option 1, capped.
fn assignment_set(program: &ChoiceProgram) -> Vec<ChoiceAssignment> {
    let mut assignments = vec![ChoiceAssignment::default_choices()];
    for info in &program.choices {
        if assignments.len() >= MAX_ASSIGNMENTS {
            break;
        }
        let mut assignment = ChoiceAssignment::default_choices();
        assignment.select(info.id, 1);
        assignments.push(assignment);
    }
    assignments
}

#[derive(Default)]
struct ModeTotals {
    sweeps: u64,
    inputs: u64,
    wall: Duration,
    compiled_sessions: usize,
    sessions: usize,
}

impl ModeTotals {
    fn sweeps_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.sweeps as f64 / secs
        }
    }

    fn ns_per_input(&self) -> f64 {
        if self.inputs == 0 {
            0.0
        } else {
            self.wall.as_nanos() as f64 / self.inputs as f64
        }
    }

    fn to_json(&self, mode: SweepMode) -> Json {
        Json::object([
            ("mode", Json::str(mode.name())),
            ("sweeps", self.sweeps.to_json()),
            ("inputs", self.inputs.to_json()),
            ("wall_ms", self.wall.to_json()),
            ("sweeps_per_sec", self.sweeps_per_sec().to_json()),
            ("ns_per_input", self.ns_per_input().to_json()),
            ("compiled_sessions", self.compiled_sessions.to_json()),
            ("sessions", self.sessions.to_json()),
        ])
    }
}

fn main() {
    let options = parse_options();
    let problems: Vec<Problem> = match &options.problem {
        Some(id) => match problems::problem(id) {
            Some(problem) => vec![problem],
            None => {
                eprintln!("unknown problem '{id}'");
                std::process::exit(2);
            }
        },
        None => problems::all_problems(),
    };

    let mut tree = ModeTotals::default();
    let mut compiled = ModeTotals::default();
    let mut problem_docs = Vec::new();
    let mut disagreements = 0usize;

    for problem in &problems {
        let reference = afg_parser::parse_program(problem.reference).expect("references parse");
        let oracle_for = |mode: SweepMode| {
            EquivalenceOracle::from_reference(
                &reference,
                EquivalenceConfig {
                    entry: Some(problem.entry.to_string()),
                    sweep: mode,
                    // The microbenchmark times raw candidate execution;
                    // with the verdict cache on, the repeated timed passes
                    // would mostly measure trie walks.
                    sweep_cache: false,
                    ..EquivalenceConfig::default()
                },
            )
        };
        let tree_oracle = oracle_for(SweepMode::Tree);
        let compiled_oracle = oracle_for(SweepMode::Compiled);
        let programs = choice_programs(problem, options.mutants, options.seed);

        let mut problem_tree = ModeTotals::default();
        let mut problem_compiled = ModeTotals::default();
        for cp in &programs {
            let assignments = assignment_set(cp);
            let tree_session = tree_oracle.choice_session(cp);
            let compiled_session = compiled_oracle.choice_session(cp);

            // Differential pre-pass: both back ends must agree on every
            // assignment's verdict before either is worth timing.
            for assignment in &assignments {
                let want = tree_session.find_counterexample(assignment, &[]);
                let got = compiled_session.find_counterexample(assignment, &[]);
                if want != got {
                    disagreements += 1;
                    eprintln!(
                        "DISAGREEMENT: {} mutant — tree says {want:?}, compiled says {got:?}",
                        problem.id
                    );
                }
            }

            // Timed passes, warm (the pre-pass already touched every
            // assignment once): counters are deltas so the pre-pass work
            // is excluded from the rates.
            let timed = |session: &afg_interp::ChoiceSession, totals: &mut ModeTotals| {
                let before = session.sweep_stats();
                let start = Instant::now();
                for _ in 0..options.iters {
                    for assignment in &assignments {
                        std::hint::black_box(session.find_counterexample(assignment, &[]));
                    }
                }
                totals.wall += start.elapsed();
                let after = session.sweep_stats();
                totals.sweeps += after.sweeps - before.sweeps;
                totals.inputs += after.inputs_run - before.inputs_run;
                totals.sessions += 1;
                totals.compiled_sessions += usize::from(session.is_compiled());
            };
            timed(&tree_session, &mut problem_tree);
            timed(&compiled_session, &mut problem_compiled);
        }

        let speedup = if problem_compiled.wall.is_zero() || problem_tree.wall.is_zero() {
            1.0
        } else {
            problem_tree.ns_per_input() / problem_compiled.ns_per_input()
        };
        if !options.json {
            println!(
                "{:<14} {:>3} mutants  {:>9} inputs  tree {:>8.0} ns/input  compiled {:>8.0} ns/input  {:>5.2}x",
                problem.id,
                programs.len(),
                problem_compiled.inputs,
                problem_tree.ns_per_input(),
                problem_compiled.ns_per_input(),
                speedup,
            );
        }
        problem_docs.push(Json::object([
            ("id", Json::str(problem.id)),
            ("mutants", programs.len().to_json()),
            ("tree", problem_tree.to_json(SweepMode::Tree)),
            ("compiled", problem_compiled.to_json(SweepMode::Compiled)),
            ("speedup", speedup.to_json()),
        ]));

        tree.sweeps += problem_tree.sweeps;
        tree.inputs += problem_tree.inputs;
        tree.wall += problem_tree.wall;
        tree.sessions += problem_tree.sessions;
        tree.compiled_sessions += problem_tree.compiled_sessions;
        compiled.sweeps += problem_compiled.sweeps;
        compiled.inputs += problem_compiled.inputs;
        compiled.wall += problem_compiled.wall;
        compiled.sessions += problem_compiled.sessions;
        compiled.compiled_sessions += problem_compiled.compiled_sessions;
    }

    let speedup = if compiled.wall.is_zero() || tree.wall.is_zero() {
        1.0
    } else {
        tree.ns_per_input() / compiled.ns_per_input()
    };
    let doc = Json::object([
        ("seed", options.seed.to_json()),
        ("mutants", options.mutants.to_json()),
        ("iters", options.iters.to_json()),
        ("problems", Json::Array(problem_docs)),
        ("tree", tree.to_json(SweepMode::Tree)),
        ("compiled", compiled.to_json(SweepMode::Compiled)),
        ("speedup", speedup.to_json()),
        ("agreement", Json::Bool(disagreements == 0)),
    ]);

    if options.json {
        println!("{doc}");
    } else {
        println!();
        println!(
            "overall: tree {:.0} ns/input ({:.0} sweeps/s), compiled {:.0} ns/input ({:.0} sweeps/s) — {speedup:.2}x, {} of {} compiled sessions lowered",
            tree.ns_per_input(),
            tree.sweeps_per_sec(),
            compiled.ns_per_input(),
            compiled.sweeps_per_sec(),
            compiled.compiled_sessions,
            compiled.sessions,
        );
    }
    if disagreements > 0 {
        eprintln!("FAILED: {disagreements} assignments disagreed between back ends");
        std::process::exit(1);
    }
}
