//! Constraint-based synthesis of minimal corrections (paper §4).
//!
//! Given the M̃PY choice program produced by the error-model transformation
//! and an equivalence oracle over the reference implementation, this crate
//! searches for the *cheapest* selection of corrections that makes the
//! student submission behaviourally equivalent to the reference on all
//! inputs of a bounded size.
//!
//! Every back end implements the [`SearchStrategy`] trait (one entry point,
//! cooperative cancellation through [`CancelToken`]):
//!
//! * [`CegisSolver`] — the paper's approach: choice selectors are encoded as
//!   boolean variables in a SAT solver (`afg-sat`), candidates are proposed
//!   by the solver, checked against accumulated counterexamples, verified by
//!   bounded-exhaustive interpretation, and the CEGISMIN refinement
//!   `totalCost < best` drives the search to a minimum (Algorithm 1).  The
//!   whole minimisation descent is incremental: one solver, one encoding,
//!   cost bounds activated per call as totalizer assumptions.
//! * [`EnumerativeSolver`] — a branch-and-bound baseline that explores
//!   candidates in order of increasing cost, used for ablation benchmarks
//!   and as an independent correctness check.
//! * [`PortfolioSolver`] — races the two on std threads and cancels the
//!   losers as soon as one returns a proven-minimal result.
//!
//! # Example
//!
//! ```
//! use afg_eml::{apply_error_model, library};
//! use afg_interp::{EquivalenceConfig, EquivalenceOracle};
//! use afg_synth::{CegisSolver, SearchStrategy, SynthesisConfig};
//!
//! let reference = afg_parser::parse_program(
//!     "def double(x_int):\n    return x_int * 2\n",
//! )?;
//! let student = afg_parser::parse_program(
//!     "def double(x):\n    return x * 3\n",
//! )?;
//! // A one-rule model: integer constants may be off by one.
//! let model = afg_eml::ErrorModel::new("demo").with_rule(library::const_tweak());
//! let choices = apply_error_model(&student, Some("double"), &model)?;
//! let oracle = EquivalenceOracle::from_reference(
//!     &reference,
//!     EquivalenceConfig { entry: Some("double".into()), ..EquivalenceConfig::default() },
//! );
//! let outcome = CegisSolver::new().synthesize(&choices, &oracle, &SynthesisConfig::fast());
//! assert_eq!(outcome.solution().map(|s| s.cost), Some(1));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod bitset;
mod cegis;
mod config;
mod encode;
mod enumerate;
mod portfolio;
mod strategy;

pub use cegis::CegisSolver;
pub use config::{Solution, SynthesisConfig, SynthesisOutcome, SynthesisStats, WarmStart};
pub use encode::{instrument, ChoiceEncoding};
pub use enumerate::EnumerativeSolver;
pub use portfolio::PortfolioSolver;
pub use strategy::{CancelToken, SearchStrategy};

/// Which synthesis back end to use — the value-level selector over the
/// [`SearchStrategy`] implementations, as carried in configuration, CLI
/// flags (`--backend`) and service registrations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// SAT-backed CEGIS with CEGISMIN minimisation (the paper's approach).
    #[default]
    Cegis,
    /// Cost-ordered enumerative branch-and-bound (ablation baseline).
    Enumerative,
    /// CEGIS and enumeration raced; first proven-minimal result wins.
    Portfolio,
}

impl Backend {
    /// Every backend, in presentation order.
    pub const ALL: [Backend; 3] = [Backend::Cegis, Backend::Enumerative, Backend::Portfolio];

    /// The stable identifier used on CLI flags and in JSON.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Cegis => "cegis",
            Backend::Enumerative => "enum",
            Backend::Portfolio => "portfolio",
        }
    }

    /// Parses a backend identifier (`"cegis"`, `"enum"`/`"enumerative"`,
    /// `"portfolio"`); `None` for anything else.
    pub fn parse(text: &str) -> Option<Backend> {
        match text {
            "cegis" => Some(Backend::Cegis),
            "enum" | "enumerative" => Some(Backend::Enumerative),
            "portfolio" => Some(Backend::Portfolio),
            _ => None,
        }
    }

    /// Builds the strategy object this selector denotes.
    pub fn strategy(self) -> Box<dyn SearchStrategy> {
        match self {
            Backend::Cegis => Box::new(CegisSolver::new()),
            Backend::Enumerative => Box::new(EnumerativeSolver::new()),
            Backend::Portfolio => Box::new(PortfolioSolver::new()),
        }
    }

    /// Runs the selected back end to completion.
    pub fn synthesize(
        self,
        program: &afg_eml::ChoiceProgram,
        oracle: &afg_interp::EquivalenceOracle,
        config: &SynthesisConfig,
    ) -> SynthesisOutcome {
        self.strategy().synthesize(program, oracle, config)
    }

    /// Runs the selected back end under a cancellation token.
    pub fn synthesize_with(
        self,
        program: &afg_eml::ChoiceProgram,
        oracle: &afg_interp::EquivalenceOracle,
        config: &SynthesisConfig,
        cancel: &CancelToken,
    ) -> SynthesisOutcome {
        self.strategy()
            .synthesize_with(program, oracle, config, cancel)
    }

    /// Runs the selected back end to completion with an optional
    /// transferred [`WarmStart`] hypothesis (see
    /// [`SearchStrategy::synthesize_with_hint`]).
    pub fn synthesize_with_hint(
        self,
        program: &afg_eml::ChoiceProgram,
        oracle: &afg_interp::EquivalenceOracle,
        config: &SynthesisConfig,
        warm: Option<&WarmStart>,
    ) -> SynthesisOutcome {
        self.strategy()
            .synthesize_with_hint(program, oracle, config, warm, &CancelToken::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_default_is_cegis() {
        assert_eq!(Backend::default(), Backend::Cegis);
    }

    #[test]
    fn backend_names_round_trip() {
        for backend in Backend::ALL {
            assert_eq!(Backend::parse(backend.name()), Some(backend));
            assert_eq!(backend.strategy().name(), backend.name());
        }
        assert_eq!(Backend::parse("enumerative"), Some(Backend::Enumerative));
        assert_eq!(Backend::parse("sketch"), None);
    }
}
