//! Classroom-cohort workload: seeded mutant cohorts of N students over K
//! skeletons, graded cold vs warm.
//!
//! Real cohorts are clustered: students copy the same scaffold, make the
//! same mistake, and differ in incidentals — a leftover variable here, a
//! different filled-in constant there.  The generator reproduces exactly
//! that shape so the cluster index (`afg_core::ClusterIndex`) has
//! something real to exploit:
//!
//! * `K` **skeletons**: each is one of the problem's correct solutions
//!   with a single seeded mistake injected (`afg_corpus::mutate_program`)
//!   — the cohort's shared bug;
//! * `N` **students** spread over the skeletons: every student gets the
//!   skeleton verbatim plus a leftover `scratchpad = <constant>`
//!   assignment whose constant is unique per student.  The constant is
//!   semantically inert, so cluster-mates behave identically — but their
//!   canonical forms differ, so the fingerprint cache misses and the
//!   skeleton cluster is what collapses the work.
//!
//! [`run_classroom`] grades one cohort through a fresh cache (+ cluster
//! index when transfer is on) and reports the totals the acceptance
//! criterion compares: per-submission outcomes/costs (must be identical
//! cold vs warm), summed SAT conflicts of the actually-run searches, and
//! wall clock.

use std::time::Duration;

use afg_ast::{Expr, Stmt, StmtKind, Target};
use afg_core::{
    BatchGrader, ClusterIndex, ClusterStats, FingerprintCache, GradeOutcome, WorkerStats,
};
use afg_corpus::rng::StdRng;
use afg_corpus::{mutate_program, Problem};
use afg_json::{Json, ToJson};

/// Shape of one generated cohort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassroomSpec {
    /// Total submissions (students).
    pub students: usize,
    /// Distinct buggy skeletons the students are spread over.
    pub skeletons: usize,
    /// RNG seed; cohorts are fully reproducible.
    pub seed: u64,
}

impl ClassroomSpec {
    /// The acceptance-criterion cohort: 64 students over 8 skeletons.
    pub fn acceptance(seed: u64) -> ClassroomSpec {
        ClassroomSpec {
            students: 64,
            skeletons: 8,
            seed,
        }
    }
}

/// Generates the cohort sources, in arrival order (students of different
/// skeletons interleaved round-robin, the way submissions trickle in).
pub fn classroom_cohort(problem: &Problem, spec: &ClassroomSpec) -> Vec<String> {
    let skeletons = spec.skeletons.max(1);
    let seeds = problem.mutation_seeds();
    let mut skeleton_programs = Vec::with_capacity(skeletons);
    for k in 0..skeletons {
        let base = seeds[k % seeds.len()];
        let mut program = afg_parser::parse_program(base).expect("corpus seeds parse");
        let mut rng = StdRng::seed_from_u64(spec.seed ^ ((k as u64 + 1) << 24));
        mutate_program(&mut program, 1, &mut rng);
        skeleton_programs.push(program);
    }

    let mut sources = Vec::with_capacity(spec.students);
    for s in 0..spec.students {
        let k = s % skeletons;
        let mut program = skeleton_programs[k].clone();
        if let Some(func) = program.funcs.first_mut() {
            // The per-student incidental: a leftover assignment whose
            // constant is unique to the student.  Semantically inert
            // (never read), structurally identical across the cohort —
            // distinct canonical forms, one skeleton.
            let constant = 1 + (s / skeletons) as i64 + 1000 * (k as i64 + 1);
            func.body.insert(
                0,
                Stmt::new(
                    func.line + 1,
                    StmtKind::Assign(Target::Var("scratchpad".into()), Expr::Int(constant)),
                ),
            );
        }
        sources.push(afg_ast::pretty::program_to_string(&program));
    }
    sources
}

/// The comparable verdict of one submission: outcome tag plus repair cost.
pub type ClassroomVerdict = (&'static str, Option<usize>);

/// One cold or warm grading pass over a cohort.
#[derive(Debug, Clone)]
pub struct ClassroomRun {
    /// Per-submission verdicts, in cohort order.
    pub verdicts: Vec<ClassroomVerdict>,
    /// SAT conflicts summed over the searches that actually ran (cache
    /// hits replay the donor's stats and are excluded).
    pub sat_conflicts: u64,
    /// Candidate programs interpreted, same exclusion.
    pub candidates_checked: u64,
    /// Wall clock the actually-run searches spent inside the SAT solver
    /// (proposing candidates), same exclusion.
    pub sat_elapsed: Duration,
    /// Wall clock those searches spent verifying candidates against the
    /// bounded input space — the part compiled sweeps accelerate.
    pub verify_elapsed: Duration,
    /// Wall-clock time for the whole pass.
    pub wall: Duration,
    /// Merged per-worker counters (cache and transfer tallies included).
    pub totals: WorkerStats,
    /// The cluster index's view, when transfer was enabled.
    pub cluster: Option<ClusterStats>,
}

/// Grades `sources` once through a fresh fingerprint cache, with the
/// cluster index (repair transfer) on or off.
pub fn run_classroom(
    grader: &afg_core::Autograder,
    sources: &[String],
    workers: usize,
    transfer: bool,
) -> ClassroomRun {
    let cache = FingerprintCache::new();
    let clusters = transfer.then(ClusterIndex::new);
    let report = BatchGrader::new(workers).grade_sources_clustered(
        grader,
        sources,
        Some(&cache),
        clusters.as_ref(),
    );

    let mut sat_conflicts = 0u64;
    let mut candidates_checked = 0u64;
    let mut sat_elapsed = Duration::ZERO;
    let mut verify_elapsed = Duration::ZERO;
    let mut verdicts = Vec::with_capacity(report.items.len());
    for item in &report.items {
        let verdict = match &item.outcome {
            GradeOutcome::SyntaxError(_) => ("syntax_error", None),
            GradeOutcome::Correct => ("correct", None),
            GradeOutcome::Feedback(feedback) => {
                if item.cache_hit != Some(true) {
                    sat_conflicts += feedback.stats.sat_conflicts;
                    candidates_checked += feedback.stats.candidates_checked as u64;
                    sat_elapsed += feedback.stats.sat_elapsed;
                    verify_elapsed += feedback.stats.verify_elapsed;
                }
                ("feedback", Some(feedback.cost))
            }
            GradeOutcome::CannotFix => ("cannot_fix", None),
            GradeOutcome::Timeout => ("timeout", None),
        };
        verdicts.push(verdict);
    }
    ClassroomRun {
        verdicts,
        sat_conflicts,
        candidates_checked,
        sat_elapsed,
        verify_elapsed,
        wall: report.wall_time,
        totals: report.totals(),
        cluster: clusters.map(|index| index.stats()),
    }
}

/// The JSON document `loadgen --classroom` emits (and the CI smoke step
/// asserts on with `jq`).
pub fn classroom_json(
    problem: &Problem,
    spec: &ClassroomSpec,
    cold: &ClassroomRun,
    warm: Option<&ClassroomRun>,
) -> Json {
    let run_json = |run: &ClassroomRun| {
        let mut pairs = vec![
            ("sat_conflicts".to_string(), run.sat_conflicts.to_json()),
            (
                "candidates_checked".to_string(),
                run.candidates_checked.to_json(),
            ),
            ("wall_ms".to_string(), run.wall.to_json()),
            ("cache_hits".to_string(), run.totals.cache_hits.to_json()),
            (
                "transfer_attempts".to_string(),
                run.totals.transfer_attempts.to_json(),
            ),
            (
                "transfer_hits".to_string(),
                run.totals.transfer_hits.to_json(),
            ),
            (
                "sweep".to_string(),
                Json::object([
                    ("sweeps", run.totals.sweeps.to_json()),
                    ("sweep_inputs", run.totals.sweep_inputs.to_json()),
                    ("compiled", Json::Bool(run.totals.sweep_compiled)),
                    ("sat_ms", run.sat_elapsed.to_json()),
                    ("verify_ms", run.verify_elapsed.to_json()),
                ]),
            ),
        ];
        if let Some(cluster) = &run.cluster {
            pairs.push(("clusters".to_string(), cluster.to_json()));
        }
        Json::Object(pairs)
    };
    let mut pairs = vec![
        ("problem".to_string(), Json::str(problem.id)),
        ("students".to_string(), spec.students.to_json()),
        ("skeletons".to_string(), spec.skeletons.to_json()),
        ("seed".to_string(), spec.seed.to_json()),
        ("cold".to_string(), run_json(cold)),
    ];
    if let Some(warm) = warm {
        pairs.push(("warm".to_string(), run_json(warm)));
        pairs.push((
            "cost_identical".to_string(),
            Json::Bool(cold.verdicts == warm.verdicts),
        ));
        pairs.push((
            "conflicts_saved".to_string(),
            cold.sat_conflicts
                .saturating_sub(warm.sat_conflicts)
                .to_json(),
        ));
    }
    Json::Object(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use afg_core::GraderConfig;
    use afg_corpus::problems;

    /// Candidate-bounded (deterministic) and *small*: these run in debug
    /// CI, where every interpreted candidate counts.  Unfixable cohort
    /// members settle as candidate-budget timeouts, which compare fine.
    fn deterministic_config() -> GraderConfig {
        GraderConfig {
            synthesis: afg_synth::SynthesisConfig {
                max_cost: 2,
                max_candidates: 300,
                time_budget: Duration::from_secs(600),
            },
            ..GraderConfig::fast()
        }
    }

    #[test]
    fn cohorts_are_seeded_clustered_and_parse() {
        let problem = problems::compute_deriv();
        let spec = ClassroomSpec {
            students: 24,
            skeletons: 4,
            seed: 11,
        };
        let cohort = classroom_cohort(&problem, &spec);
        assert_eq!(cohort.len(), 24);
        assert_eq!(cohort, classroom_cohort(&problem, &spec), "reproducible");

        // Every member parses, and the cohort collapses onto exactly K
        // skeletons with (mostly) distinct canonical forms.
        let mut skeletons = std::collections::HashSet::new();
        let mut canonicals = std::collections::HashSet::new();
        for source in &cohort {
            let program = afg_parser::parse_program(source).expect("members parse");
            skeletons.insert(afg_ast::canon::skeleton_source(&program));
            canonicals.insert(afg_ast::canon::canonical_source(&program));
        }
        assert_eq!(skeletons.len(), 4, "one skeleton per cluster");
        assert_eq!(canonicals.len(), 24, "every student is a distinct miss");
    }

    #[test]
    fn warm_pass_transfers_and_matches_cold_verdicts() {
        // iterPower: the smallest benchmark (tiny input space, small
        // model), so the cold baseline stays cheap in debug builds.
        let problem = problems::iter_power();
        let spec = ClassroomSpec {
            students: 12,
            skeletons: 3,
            seed: 5,
        };
        let cohort = classroom_cohort(&problem, &spec);
        let grader = problem.autograder(deterministic_config());
        let cold = run_classroom(&grader, &cohort, 1, false);
        let warm = run_classroom(&grader, &cohort, 1, true);

        assert_eq!(cold.verdicts, warm.verdicts, "outcomes must be identical");
        assert!(cold.cluster.is_none());
        let cluster = warm.cluster.expect("transfer pass tracks clusters");
        assert!(cluster.clusters <= 3, "{cluster:?}");
        assert!(
            warm.totals.transfer_hits > 0,
            "cohort redundancy must produce transfer hits: {cluster:?}"
        );
        // The saving shows up as SAT conflicts: a verified hypothesis
        // starts the descent at its cost, skipping the proposals the cold
        // run refutes on the way down.  (Candidate counts can tie on tiny
        // problems — one hypothesis sweep replaces one proposal.)
        assert!(
            warm.sat_conflicts < cold.sat_conflicts,
            "warm {} vs cold {} SAT conflicts",
            warm.sat_conflicts,
            cold.sat_conflicts
        );
        assert!(warm.candidates_checked <= cold.candidates_checked);

        let doc = classroom_json(&problem, &spec, &cold, Some(&warm));
        assert_eq!(doc.get("cost_identical"), Some(&Json::Bool(true)));
        assert!(doc
            .get("warm")
            .and_then(|w| w.get("transfer_hits"))
            .is_some());

        // Both runs report their verification-sweep work: counts plus the
        // SAT-vs-verification wall-clock split.
        for pass in ["cold", "warm"] {
            let sweep = doc
                .get(pass)
                .and_then(|run| run.get("sweep"))
                .unwrap_or_else(|| panic!("{pass} run reports sweep work"));
            assert!(
                sweep.get("sweeps").and_then(Json::as_i64).unwrap_or(0) > 0,
                "{pass} run swept at least once: {sweep}"
            );
            assert!(sweep.get("sat_ms").is_some() && sweep.get("verify_ms").is_some());
        }
    }
}
