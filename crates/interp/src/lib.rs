//! Dynamically-typed MPY runtime: values, interpreter, bounded input
//! enumeration and equivalence checking.
//!
//! This crate is the runtime substrate of the feedback generator.  The
//! paper encodes Python's dynamic typing inside the statically-typed SKETCH
//! language with a `MultiType` union struct and checks equivalence of the
//! student and reference programs symbolically on all inputs of a bounded
//! size; here the same roles are played by
//!
//! * [`Value`] — the dynamic value type ([`value`] module),
//! * [`Interpreter`] — a fuel-bounded definitional interpreter
//!   ([`interp`] module),
//! * [`InputSpace`] — enumeration of the bounded input space
//!   ([`inputs`] module), and
//! * [`EquivalenceOracle`] — cached reference results + counterexample
//!   queries ([`equiv`] module).
//!
//! # Example
//!
//! ```
//! use afg_interp::{run_function, ExecLimits, Value};
//!
//! let program = afg_parser::parse_program(
//!     "def double(x_int):\n    return x_int * 2\n",
//! )?;
//! let outcome = run_function(&program, Some("double"), &[Value::Int(21)], ExecLimits::default())?;
//! assert_eq!(outcome.value, Value::Int(42));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod builtins;
pub mod bytecode;
pub mod choice_eval;
pub mod equiv;
pub mod error;
pub mod inputs;
pub mod interp;
pub mod value;

pub use bytecode::{CompiledProgram, Vm};
pub use choice_eval::ChoiceEvaluator;
pub use equiv::{
    classify, ChoiceSession, EquivalenceConfig, EquivalenceOracle, ExecResult, SweepMode,
    SweepStats, Verdict,
};
pub use error::RuntimeError;
pub use inputs::InputSpace;
pub use interp::{binary_op, compare_op, run_function, unary_op, ExecLimits, Interpreter, Outcome};
pub use value::Value;
