//! Pretty-printer: renders MPY ASTs back to concrete syntax.
//!
//! The printer is used for three purposes:
//!
//! 1. round-tripping in parser tests (`parse(print(ast)) == ast`),
//! 2. rendering "the problematic expression in the line" and "the new
//!    modified value of the sub-expression" in feedback messages
//!    (paper Figure 2(d)–(f)), and
//! 3. debugging output of synthesised candidate programs.

use crate::ops::UnaryOp;
use crate::{Expr, FuncDef, Program, Stmt, StmtKind, Target};
use std::fmt::Write as _;

/// Renders an expression as MPY source.
///
/// ```
/// use afg_ast::{Expr, ops::CmpOp};
/// let e = Expr::compare(CmpOp::Eq, Expr::call("len", vec![Expr::var("poly")]), Expr::Int(1));
/// assert_eq!(afg_ast::pretty::expr_to_string(&e), "len(poly) == 1");
/// ```
pub fn expr_to_string(expr: &Expr) -> String {
    let mut out = String::new();
    write_expr(&mut out, expr, 0);
    out
}

/// Renders an assignment target as MPY source.
pub fn target_to_string(target: &Target) -> String {
    match target {
        Target::Var(name) => name.clone(),
        Target::Index(base, index) => {
            format!("{}[{}]", expr_to_string(base), expr_to_string(index))
        }
        Target::Tuple(items) => items
            .iter()
            .map(target_to_string)
            .collect::<Vec<_>>()
            .join(", "),
    }
}

/// Renders a single statement (and its nested blocks) with the given
/// indentation level (4 spaces per level).
pub fn stmt_to_string(stmt: &Stmt, indent: usize) -> String {
    let mut out = String::new();
    write_stmt(&mut out, stmt, indent);
    out
}

/// Renders a function definition as MPY source.
pub fn func_to_string(func: &FuncDef) -> String {
    let mut out = String::new();
    let params = func
        .params
        .iter()
        .map(|p| p.name.clone())
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(out, "def {}({}):", func.name, params);
    if func.body.is_empty() {
        out.push_str("    pass\n");
    }
    for stmt in &func.body {
        write_stmt(&mut out, stmt, 1);
    }
    out
}

/// Renders a whole program as MPY source.
pub fn program_to_string(program: &Program) -> String {
    let mut out = String::new();
    for func in &program.funcs {
        out.push_str(&func_to_string(func));
        out.push('\n');
    }
    for stmt in &program.top_level {
        write_stmt(&mut out, stmt, 0);
    }
    out
}

fn write_stmt(out: &mut String, stmt: &Stmt, indent: usize) {
    let pad = "    ".repeat(indent);
    match &stmt.kind {
        StmtKind::Assign(target, value) => {
            let _ = writeln!(
                out,
                "{pad}{} = {}",
                target_to_string(target),
                expr_to_string(value)
            );
        }
        StmtKind::AugAssign(target, op, value) => {
            let _ = writeln!(
                out,
                "{pad}{} {}= {}",
                target_to_string(target),
                op.symbol(),
                expr_to_string(value)
            );
        }
        StmtKind::ExprStmt(expr) => {
            let _ = writeln!(out, "{pad}{}", expr_to_string(expr));
        }
        StmtKind::If(cond, then_body, else_body) => {
            let _ = writeln!(out, "{pad}if {}:", expr_to_string(cond));
            write_block(out, then_body, indent + 1);
            if !else_body.is_empty() {
                let _ = writeln!(out, "{pad}else:");
                write_block(out, else_body, indent + 1);
            }
        }
        StmtKind::While(cond, body) => {
            let _ = writeln!(out, "{pad}while {}:", expr_to_string(cond));
            write_block(out, body, indent + 1);
        }
        StmtKind::For(var, iter, body) => {
            let _ = writeln!(out, "{pad}for {} in {}:", var, expr_to_string(iter));
            write_block(out, body, indent + 1);
        }
        StmtKind::Return(Some(expr)) => {
            let _ = writeln!(out, "{pad}return {}", expr_to_string(expr));
        }
        StmtKind::Return(None) => {
            let _ = writeln!(out, "{pad}return");
        }
        StmtKind::Print(args) => {
            let rendered = args
                .iter()
                .map(expr_to_string)
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(out, "{pad}print({rendered})");
        }
        StmtKind::Pass => {
            let _ = writeln!(out, "{pad}pass");
        }
        StmtKind::Break => {
            let _ = writeln!(out, "{pad}break");
        }
        StmtKind::Continue => {
            let _ = writeln!(out, "{pad}continue");
        }
    }
}

fn write_block(out: &mut String, body: &[Stmt], indent: usize) {
    if body.is_empty() {
        let _ = writeln!(out, "{}pass", "    ".repeat(indent));
        return;
    }
    for stmt in body {
        write_stmt(out, stmt, indent);
    }
}

/// Precedence levels: 0 = lowest (ternary), then or, and, not, comparison,
/// arithmetic (4-6 from `BinOp::precedence`), 7 = unary minus,
/// 8 = postfix/primary.
fn write_expr(out: &mut String, expr: &Expr, parent_prec: u8) {
    let prec = expr_precedence(expr);
    let needs_parens = prec < parent_prec;
    if needs_parens {
        out.push('(');
    }
    match expr {
        Expr::Int(v) => {
            let _ = write!(out, "{v}");
        }
        Expr::Bool(true) => out.push_str("True"),
        Expr::Bool(false) => out.push_str("False"),
        Expr::Str(s) => {
            let _ = write!(out, "'{}'", s.replace('\\', "\\\\").replace('\'', "\\'"));
        }
        Expr::None => out.push_str("None"),
        Expr::Var(name) => out.push_str(name),
        Expr::List(items) => {
            out.push('[');
            write_comma_separated(out, items);
            out.push(']');
        }
        Expr::Tuple(items) => {
            out.push('(');
            write_comma_separated(out, items);
            if items.len() == 1 {
                out.push(',');
            }
            out.push(')');
        }
        Expr::Dict(items) => {
            out.push('{');
            for (i, (k, v)) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, k, 0);
                out.push_str(": ");
                write_expr(out, v, 0);
            }
            out.push('}');
        }
        Expr::Index(base, index) => {
            write_expr(out, base, 8);
            out.push('[');
            write_expr(out, index, 0);
            out.push(']');
        }
        Expr::Slice(base, lower, upper) => {
            write_expr(out, base, 8);
            out.push('[');
            if let Some(l) = lower {
                write_expr(out, l, 0);
            }
            out.push(':');
            if let Some(u) = upper {
                write_expr(out, u, 0);
            }
            out.push(']');
        }
        Expr::BinOp(op, left, right) => {
            let p = op.precedence();
            write_expr(out, left, p);
            let _ = write!(out, " {} ", op.symbol());
            // For left-associative operators the right operand needs strictly
            // higher precedence to force parentheses on same-precedence
            // children; `**` is right-associative so its exponent does not.
            let right_prec = if *op == crate::ops::BinOp::Pow {
                p
            } else {
                p + 1
            };
            write_expr(out, right, right_prec);
        }
        Expr::UnaryOp(op, operand) => {
            out.push_str(op.symbol());
            let operand_prec = match op {
                UnaryOp::Neg => 7,
                UnaryOp::Not => 3,
            };
            write_expr(out, operand, operand_prec);
        }
        Expr::Compare(op, left, right) => {
            write_expr(out, left, 4);
            let _ = write!(out, " {} ", op.symbol());
            write_expr(out, right, 4);
        }
        Expr::BoolExpr(op, left, right) => {
            let p = expr_precedence(expr);
            write_expr(out, left, p);
            let _ = write!(out, " {} ", op.symbol());
            write_expr(out, right, p + 1);
        }
        Expr::Call(func, args) => {
            out.push_str(func);
            out.push('(');
            write_comma_separated(out, args);
            out.push(')');
        }
        Expr::MethodCall(recv, method, args) => {
            write_expr(out, recv, 8);
            out.push('.');
            out.push_str(method);
            out.push('(');
            write_comma_separated(out, args);
            out.push(')');
        }
        Expr::IfExpr(body, cond, orelse) => {
            write_expr(out, body, 1);
            out.push_str(" if ");
            write_expr(out, cond, 1);
            out.push_str(" else ");
            write_expr(out, orelse, 0);
        }
    }
    if needs_parens {
        out.push(')');
    }
}

fn write_comma_separated(out: &mut String, items: &[Expr]) {
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_expr(out, item, 0);
    }
}

fn expr_precedence(expr: &Expr) -> u8 {
    match expr {
        Expr::IfExpr(..) => 0,
        Expr::BoolExpr(op, ..) => match op {
            crate::ops::BoolOp::Or => 1,
            crate::ops::BoolOp::And => 2,
        },
        Expr::UnaryOp(UnaryOp::Not, _) => 3,
        Expr::Compare(..) => 4,
        Expr::BinOp(op, ..) => op.precedence(),
        Expr::UnaryOp(UnaryOp::Neg, _) => 7,
        _ => 8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{BinOp, BoolOp, CmpOp};
    use crate::types::MpyType;
    use crate::Param;

    #[test]
    fn renders_literals() {
        assert_eq!(expr_to_string(&Expr::Int(5)), "5");
        assert_eq!(expr_to_string(&Expr::Bool(true)), "True");
        assert_eq!(expr_to_string(&Expr::str("_")), "'_'");
        assert_eq!(expr_to_string(&Expr::None), "None");
        assert_eq!(expr_to_string(&Expr::List(vec![])), "[]");
        assert_eq!(expr_to_string(&Expr::List(vec![Expr::Int(0)])), "[0]");
        assert_eq!(expr_to_string(&Expr::Tuple(vec![Expr::Int(1)])), "(1,)");
    }

    #[test]
    fn parenthesises_by_precedence() {
        // (1 + 2) * 3 needs parentheses; 1 + 2 * 3 does not.
        let sum = Expr::binop(BinOp::Add, Expr::Int(1), Expr::Int(2));
        let e = Expr::binop(BinOp::Mul, sum.clone(), Expr::Int(3));
        assert_eq!(expr_to_string(&e), "(1 + 2) * 3");
        let e = Expr::binop(
            BinOp::Add,
            Expr::Int(1),
            Expr::binop(BinOp::Mul, Expr::Int(2), Expr::Int(3)),
        );
        assert_eq!(expr_to_string(&e), "1 + 2 * 3");
    }

    #[test]
    fn right_associative_subtraction_is_parenthesised() {
        // 1 - (2 - 3) must keep its parentheses.
        let inner = Expr::binop(BinOp::Sub, Expr::Int(2), Expr::Int(3));
        let e = Expr::binop(BinOp::Sub, Expr::Int(1), inner);
        assert_eq!(expr_to_string(&e), "1 - (2 - 3)");
    }

    #[test]
    fn renders_comparisons_and_bool_ops() {
        let cmp = Expr::compare(CmpOp::Le, Expr::var("idx"), Expr::var("plen"));
        assert_eq!(expr_to_string(&cmp), "idx <= plen");
        let both = Expr::BoolExpr(
            BoolOp::And,
            Box::new(cmp.clone()),
            Box::new(Expr::compare(CmpOp::Gt, Expr::var("idx"), Expr::Int(0))),
        );
        assert_eq!(expr_to_string(&both), "idx <= plen and idx > 0");
    }

    #[test]
    fn renders_calls_indexing_and_slices() {
        let e = Expr::index(Expr::var("poly"), Expr::var("i"));
        assert_eq!(expr_to_string(&e), "poly[i]");
        let e = Expr::Slice(
            Box::new(Expr::var("result")),
            Some(Box::new(Expr::Int(1))),
            None,
        );
        assert_eq!(expr_to_string(&e), "result[1:]");
        let e = Expr::MethodCall(
            Box::new(Expr::var("deriv")),
            "append".into(),
            vec![Expr::Int(0)],
        );
        assert_eq!(expr_to_string(&e), "deriv.append(0)");
    }

    #[test]
    fn renders_statements_and_functions() {
        let func = FuncDef {
            name: "f".into(),
            params: vec![Param::new("x", MpyType::Int)],
            body: vec![
                Stmt::new(2, StmtKind::Assign(Target::Var("y".into()), Expr::Int(0))),
                Stmt::new(
                    3,
                    StmtKind::If(
                        Expr::compare(CmpOp::Gt, Expr::var("x"), Expr::Int(0)),
                        vec![Stmt::new(4, StmtKind::Return(Some(Expr::var("x"))))],
                        vec![Stmt::new(6, StmtKind::Return(Some(Expr::var("y"))))],
                    ),
                ),
            ],
            line: 1,
        };
        let rendered = func_to_string(&func);
        let expected =
            "def f(x):\n    y = 0\n    if x > 0:\n        return x\n    else:\n        return y\n";
        assert_eq!(rendered, expected);
    }

    #[test]
    fn renders_for_and_while_loops() {
        let s = Stmt::new(
            1,
            StmtKind::For(
                "e".into(),
                Expr::call(
                    "range",
                    vec![Expr::Int(0), Expr::call("len", vec![Expr::var("poly")])],
                ),
                vec![Stmt::new(
                    2,
                    StmtKind::AugAssign(Target::Var("z".into()), BinOp::Add, Expr::Int(1)),
                )],
            ),
        );
        assert_eq!(
            stmt_to_string(&s, 0),
            "for e in range(0, len(poly)):\n    z += 1\n"
        );
        let s = Stmt::new(
            1,
            StmtKind::While(Expr::Bool(true), vec![Stmt::new(2, StmtKind::Break)]),
        );
        assert_eq!(stmt_to_string(&s, 1), "    while True:\n        break\n");
    }

    #[test]
    fn empty_blocks_render_pass() {
        let s = Stmt::new(1, StmtKind::If(Expr::Bool(true), vec![], vec![]));
        assert_eq!(stmt_to_string(&s, 0), "if True:\n    pass\n");
    }
}
