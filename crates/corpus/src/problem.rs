//! Benchmark problem definitions.
//!
//! A [`Problem`] bundles everything the experiments need about one
//! assignment: the instructor's reference implementation and entry-point
//! name, the EML error model, a handful of algorithmically distinct correct
//! solutions (students solve the same problem in very different ways —
//! paper Figure 2), hand-written *conceptual-error* submissions that local
//! rules cannot fix (paper §5.3), and the fixed test inputs used by the
//! test-case baseline.

use afg_core::{Autograder, GraderConfig};
use afg_eml::ErrorModel;
use afg_interp::Value;
use afg_parser::parse_program;

/// One benchmark assignment.
#[derive(Debug, Clone)]
pub struct Problem {
    /// Short identifier, e.g. `"compDeriv"`.
    pub id: &'static str,
    /// The paper's benchmark name, e.g. `"compDeriv-6.00x"`.
    pub name: &'static str,
    /// Name of the graded function.
    pub entry: &'static str,
    /// The instructor's reference implementation (MPY source).
    pub reference: &'static str,
    /// The problem-specific error model.
    pub model: ErrorModel,
    /// Correct solutions using different algorithms (used both as test
    /// oracles for the corpus generator and as mutation seeds).
    pub correct_variants: Vec<&'static str>,
    /// Incorrect solutions with *big conceptual errors* that no local
    /// correction rule can fix.
    pub conceptual_mutants: Vec<&'static str>,
    /// The fixed inputs used by the test-case baseline (roughly the number
    /// of test cases 6.00x used).
    pub test_inputs: Vec<Vec<Value>>,
}

impl Problem {
    /// Builds an [`Autograder`] for this problem with the given budget.
    pub fn autograder(&self, config: GraderConfig) -> Autograder {
        Autograder::new(self.reference, self.entry, self.model.clone(), config)
            .expect("benchmark reference implementations parse")
    }

    /// All seeds usable for mutation: the reference plus the correct
    /// variants.
    pub fn mutation_seeds(&self) -> Vec<&'static str> {
        let mut seeds = vec![self.reference];
        seeds.extend(self.correct_variants.iter().copied());
        seeds
    }

    /// Median statement count of the reference implementation — the
    /// "Median LOC" column of Table 1 is approximated by the reference's
    /// size since we do not have the real submissions.
    pub fn reference_loc(&self) -> usize {
        let program = parse_program(self.reference).expect("reference parses");
        afg_ast::visit::program_stmt_count(&program)
    }

    /// Sanity check used by tests: every correct variant must actually be
    /// equivalent to the reference, and every conceptual mutant must not be.
    pub fn validate(&self) -> Result<(), String> {
        let grader = self.autograder(GraderConfig::fast());
        for (i, variant) in self.correct_variants.iter().enumerate() {
            let program = parse_program(variant)
                .map_err(|e| format!("{}: correct variant {i} does not parse: {e}", self.id))?;
            if grader.oracle().find_counterexample(&program).is_some() {
                return Err(format!(
                    "{}: correct variant {i} is not equivalent to the reference",
                    self.id
                ));
            }
        }
        for (i, mutant) in self.conceptual_mutants.iter().enumerate() {
            let program = parse_program(mutant)
                .map_err(|e| format!("{}: conceptual mutant {i} does not parse: {e}", self.id))?;
            if grader.oracle().find_counterexample(&program).is_none() {
                return Err(format!(
                    "{}: conceptual mutant {i} is unexpectedly correct",
                    self.id
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::problems;

    #[test]
    fn every_problem_has_a_parsable_reference_and_model() {
        for problem in problems::all_problems() {
            assert!(
                !problem.model.is_empty(),
                "{} has an empty error model",
                problem.id
            );
            assert!(
                problem.model.is_well_formed(),
                "{} has an ill-formed model",
                problem.id
            );
            assert!(
                problem.reference_loc() >= 2,
                "{} reference is trivial",
                problem.id
            );
            assert!(
                !problem.test_inputs.is_empty(),
                "{} has no baseline tests",
                problem.id
            );
        }
    }

    #[test]
    fn problem_ids_are_unique() {
        let problems = problems::all_problems();
        let mut ids: Vec<&str> = problems.iter().map(|p| p.id).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(before, ids.len());
    }
}
