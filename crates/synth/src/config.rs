//! Configuration, results and statistics shared by the synthesis back ends.

use std::time::Duration;

use afg_eml::ChoiceAssignment;

/// Resource budget and search bounds for one synthesis run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthesisConfig {
    /// Upper bound on the number of corrections considered (candidates with
    /// more non-default choices than this are never explored).
    pub max_cost: usize,
    /// Upper bound on the number of candidate programs interpreted.
    pub max_candidates: usize,
    /// Wall-clock budget for one submission (the paper uses a 4-minute
    /// timeout on a 16-core Xeon; our default is much smaller because the
    /// enumerative oracle is cheaper per query).
    pub time_budget: Duration,
}

impl Default for SynthesisConfig {
    fn default() -> SynthesisConfig {
        SynthesisConfig {
            max_cost: 4,
            max_candidates: 50_000,
            time_budget: Duration::from_secs(10),
        }
    }
}

impl SynthesisConfig {
    /// A tight budget for unit tests.
    pub fn fast() -> SynthesisConfig {
        SynthesisConfig {
            max_cost: 3,
            max_candidates: 5_000,
            time_budget: Duration::from_secs(3),
        }
    }
}

/// Counters describing how hard the synthesizer had to work.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SynthesisStats {
    /// Candidate programs evaluated against the oracle.
    pub candidates_checked: usize,
    /// CEGIS iterations (synthesis-phase / verification-phase round trips).
    pub cegis_iterations: usize,
    /// Counterexample inputs accumulated.
    pub counterexamples: usize,
    /// SAT conflicts analysed (0 for SAT-free back ends).
    pub sat_conflicts: u64,
    /// SAT unit propagations performed.
    pub sat_propagations: u64,
    /// SAT clauses learnt and retained.
    pub sat_learnts: u64,
    /// SAT restarts performed.
    pub restarts: u64,
    /// Verification sweeps answered by the equivalence session
    /// (`find_counterexample` calls, including the already-correct check).
    pub sweeps: u64,
    /// Candidate executions performed during those sweeps — one per
    /// (assignment, input) pair actually run.
    pub sweep_inputs: u64,
    /// Whether verification ran on the compiled bytecode VM (false under
    /// [`afg_interp::SweepMode::Tree`] or when the candidate space used a
    /// construct the compiler cannot lower).
    pub sweep_compiled: bool,
    /// Checks answered from the verdict cache without executing (a subset
    /// of `sweep_inputs`; 0 on the tree path or with the cache off).
    pub sweep_cache_hits: u64,
    /// Verdict-cache trie nodes held at the end of the search (high-water
    /// across merged strategies).
    pub sweep_cache_nodes: u64,
    /// Which strategy produced this result (`"cegis"`, `"enum"`, …; for a
    /// portfolio run, the *winning* strategy).
    pub strategy: &'static str,
    /// Whether the search was stopped by the wall clock or a cancellation
    /// (as opposed to exhausting its candidate budget).  A wall-clock stop
    /// depends on machine load, so such outcomes must never be cached; a
    /// candidate-budget stop replays identically anywhere.
    pub wall_clock_limited: bool,
    /// Whether a transferred [`WarmStart`] hypothesis was actually tried
    /// (the submission was incorrect and the hypothesis fit this choice
    /// program under the cost budget).
    pub warm_start_attempted: bool,
    /// Whether the tried hypothesis verified, letting the minimisation
    /// descent start at its cost instead of the top of the cost scale.
    pub warm_start_verified: bool,
    /// Learnt-clause count sampled at each CEGISMIN bound tightening —
    /// monotone when (and only when) the whole descent runs on one solver.
    pub descent_learnts: Vec<u64>,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// The share of `elapsed` spent inside SAT `solve` calls (zero for
    /// SAT-free back ends).
    pub sat_elapsed: Duration,
    /// The share of `elapsed` spent in verification sweeps
    /// (`find_counterexample` calls against the equivalence session).
    pub verify_elapsed: Duration,
}

impl SynthesisStats {
    /// Folds another strategy's counters into this one (used by the
    /// portfolio so the reported work covers *all* racers, not just the
    /// winner).  `strategy`, `descent_learnts`, `elapsed` and
    /// `wall_clock_limited` are the winner's and are left untouched — a
    /// definitive winner's proof stays deterministic even when the losers
    /// were (deliberately) stopped by cancellation; the portfolio ORs the
    /// flag in itself for the non-definitive fallback case.
    pub fn absorb_work(&mut self, other: &SynthesisStats) {
        self.candidates_checked += other.candidates_checked;
        self.cegis_iterations += other.cegis_iterations;
        self.counterexamples += other.counterexamples;
        self.sat_conflicts += other.sat_conflicts;
        self.sat_propagations += other.sat_propagations;
        self.sat_learnts += other.sat_learnts;
        self.restarts += other.restarts;
        self.sweeps += other.sweeps;
        self.sweep_inputs += other.sweep_inputs;
        self.sweep_compiled |= other.sweep_compiled;
        self.sweep_cache_hits += other.sweep_cache_hits;
        self.sweep_cache_nodes = self.sweep_cache_nodes.max(other.sweep_cache_nodes);
        self.sat_elapsed += other.sat_elapsed;
        self.verify_elapsed += other.verify_elapsed;
        // The warm-start flags describe the race as a whole — a transfer
        // tried by a losing racer must stay visible in the merged report,
        // or the cluster index undercounts whenever the other racer wins.
        self.warm_start_attempted |= other.warm_start_attempted;
        self.warm_start_verified |= other.warm_start_verified;
    }
}

/// A repair found by the synthesizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    /// The minimal-cost choice assignment that makes the submission
    /// equivalent to the reference on the bounded input space.
    pub assignment: ChoiceAssignment,
    /// Number of corrections (`totalCost` in the paper).
    pub cost: usize,
    /// Whether minimality was *proven* (the search space below `cost` was
    /// exhausted) rather than being the best candidate found before the
    /// budget ran out.  The portfolio only declares a winner on proven
    /// results.
    pub minimal: bool,
    /// The oracle input indices accumulated as counterexamples during the
    /// search, in discovery order.  The cluster index stores them with the
    /// repair so a skeleton-mate's warm start can pre-seed its fast
    /// rejection set (the inputs that killed this cohort's candidates kill
    /// the mate's candidates too).
    pub counterexamples: Vec<usize>,
    /// Search statistics.
    pub stats: SynthesisStats,
}

/// A transferred hypothesis offered to a search as a warm start: the
/// verified minimal repair (and counterexample set) of a *cluster
/// representative* — a previously graded submission with the same
/// structural skeleton ([`afg_ast::canon::skeleton_source`]).
///
/// The contract keeps warm-started outcomes **cost-identical** to cold
/// ones: the hypothesis is first re-verified against *this* submission
/// with one bounded sweep (skeleton-mates need not agree on behaviour);
/// only on success does the minimisation descent start at the hypothesis
/// cost, and the descent still runs to Unsat, so the proven minimal cost
/// cannot differ from a cold search.  On failure the hypothesis is just
/// one more blocked candidate and the search proceeds cold.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WarmStart {
    /// The representative's verified minimal repair.
    pub assignment: ChoiceAssignment,
    /// The representative's counterexample input indices, used to pre-seed
    /// the fast-rejection ordering (harmless if stale: every index is just
    /// a bounded-space input checked early).
    pub counterexamples: Vec<usize>,
}

/// The overall outcome of grading one submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthesisOutcome {
    /// The submission is already equivalent to the reference.
    AlreadyCorrect,
    /// A minimal set of corrections was found.
    Fixed(Solution),
    /// The error model cannot repair this submission (the search space was
    /// exhausted) — the paper's "cannot be fixed" outcome.
    NoRepairFound(SynthesisStats),
    /// The search hit its time or candidate budget before finishing.
    Timeout(SynthesisStats),
}

impl SynthesisOutcome {
    /// The solution, if the submission was fixed.
    pub fn solution(&self) -> Option<&Solution> {
        match self {
            SynthesisOutcome::Fixed(solution) => Some(solution),
            _ => None,
        }
    }

    /// The search statistics, for every outcome that carries them
    /// (everything but [`SynthesisOutcome::AlreadyCorrect`]).
    pub fn stats(&self) -> Option<&SynthesisStats> {
        match self {
            SynthesisOutcome::AlreadyCorrect => None,
            SynthesisOutcome::Fixed(solution) => Some(&solution.stats),
            SynthesisOutcome::NoRepairFound(stats) | SynthesisOutcome::Timeout(stats) => {
                Some(stats)
            }
        }
    }

    /// Mutable access to the carried statistics (used by the portfolio to
    /// fold the losers' work into the winner's report).
    pub fn stats_mut(&mut self) -> Option<&mut SynthesisStats> {
        match self {
            SynthesisOutcome::AlreadyCorrect => None,
            SynthesisOutcome::Fixed(solution) => Some(&mut solution.stats),
            SynthesisOutcome::NoRepairFound(stats) | SynthesisOutcome::Timeout(stats) => {
                Some(stats)
            }
        }
    }

    /// Whether this outcome settles the search: the submission is correct,
    /// provably unrepairable within the configured bounds, or repaired with
    /// *proven* minimal cost.  Budget-limited outcomes (timeouts,
    /// best-so-far repairs) are not definitive — another strategy might
    /// still do better, which is exactly what the portfolio exploits.
    pub fn is_definitive(&self) -> bool {
        match self {
            SynthesisOutcome::AlreadyCorrect | SynthesisOutcome::NoRepairFound(_) => true,
            SynthesisOutcome::Fixed(solution) => solution.minimal,
            SynthesisOutcome::Timeout(_) => false,
        }
    }

    /// Whether feedback can be generated from this outcome (the submission
    /// was either already correct or fixable).
    pub fn is_success(&self) -> bool {
        matches!(
            self,
            SynthesisOutcome::AlreadyCorrect | SynthesisOutcome::Fixed(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_reasonable() {
        let config = SynthesisConfig::default();
        assert!(
            config.max_cost >= 3,
            "the paper needs up to 4 coordinated corrections"
        );
        assert!(config.time_budget > Duration::from_secs(1));
        assert!(SynthesisConfig::fast().max_candidates < config.max_candidates);
    }

    #[test]
    fn outcome_accessors() {
        let stats = SynthesisStats::default();
        assert!(SynthesisOutcome::AlreadyCorrect.is_success());
        assert!(!SynthesisOutcome::NoRepairFound(stats.clone()).is_success());
        assert!(SynthesisOutcome::Timeout(stats).solution().is_none());
        let solution = Solution {
            assignment: ChoiceAssignment::default_choices(),
            cost: 0,
            minimal: true,
            counterexamples: Vec::new(),
            stats: SynthesisStats::default(),
        };
        assert_eq!(
            SynthesisOutcome::Fixed(solution.clone()).solution(),
            Some(&solution)
        );
    }

    #[test]
    fn definitive_outcomes_are_the_proven_ones() {
        let stats = SynthesisStats::default();
        assert!(SynthesisOutcome::AlreadyCorrect.is_definitive());
        assert!(SynthesisOutcome::NoRepairFound(stats.clone()).is_definitive());
        assert!(!SynthesisOutcome::Timeout(stats.clone()).is_definitive());
        let mut solution = Solution {
            assignment: ChoiceAssignment::default_choices(),
            cost: 1,
            minimal: true,
            counterexamples: Vec::new(),
            stats: stats.clone(),
        };
        assert!(SynthesisOutcome::Fixed(solution.clone()).is_definitive());
        solution.minimal = false;
        assert!(!SynthesisOutcome::Fixed(solution).is_definitive());
        assert!(SynthesisOutcome::AlreadyCorrect.stats().is_none());
        assert!(SynthesisOutcome::Timeout(stats).stats().is_some());
    }

    #[test]
    fn absorbing_work_sums_counters_but_keeps_identity() {
        let mut winner = SynthesisStats {
            candidates_checked: 10,
            sat_conflicts: 5,
            strategy: "cegis",
            descent_learnts: vec![1, 2],
            ..SynthesisStats::default()
        };
        let loser = SynthesisStats {
            candidates_checked: 90,
            sat_conflicts: 1,
            restarts: 2,
            strategy: "enum",
            warm_start_attempted: true,
            warm_start_verified: true,
            ..SynthesisStats::default()
        };
        winner.absorb_work(&loser);
        assert_eq!(winner.candidates_checked, 100);
        assert_eq!(winner.sat_conflicts, 6);
        assert_eq!(winner.restarts, 2);
        assert_eq!(winner.strategy, "cegis");
        assert_eq!(winner.descent_learnts, vec![1, 2]);
        // A losing racer's tried transfer survives the merge.
        assert!(winner.warm_start_attempted);
        assert!(winner.warm_start_verified);
    }
}
