//! Regenerates **Table 1** of the paper: per-benchmark totals, syntax
//! errors, correct/incorrect split, percentage of incorrect attempts with
//! generated feedback, and average/median grading time.
//!
//! ```text
//! cargo run --release -p afg-bench --bin table1 -- [--attempts N] [--seed S] [--workers N] [--json] [--backend cegis|enum|portfolio] [--sweep tree|compiled]
//! ```
//!
//! With `--json` the table is emitted as a single JSON document (via
//! `afg-json`) so CI and scripts can consume the results without scraping
//! the human-formatted text; the document carries per-row solver work
//! (`sat_conflicts`/`sat_learnts`/…), per-row winning-strategy counts
//! (`winners`, interesting under `--backend portfolio`) and an aggregate
//! `solver` object.  `--backend` selects the search engine, so backend
//! speedups are *measured* on the same corpus rather than asserted, and
//! `--sweep` selects the verification back end (tree walker vs compiled
//! bytecode VM) the same way — the aggregate `sweep_ns_per_input` is the
//! A/B metric.
//!
//! The corpora are synthetic (see DESIGN.md); absolute counts therefore
//! differ from the paper, but the shape — a majority of incorrect attempts
//! repaired, seconds-per-submission grading times, harder problems
//! (hangman2, iterGCD) taking longer — should match.  Grading runs on the
//! parallel [`afg_core::BatchGrader`] engine; note that the per-submission
//! wall-clock budget means Fixed/Timeout counts can shift slightly with
//! machine load and worker count — pass `--workers 1` for strictly
//! reproducible counts (and undistorted per-submission times).

use afg_bench::{run_problem_on, CliOptions, Table1Row};
use afg_corpus::{problems, CorpusSpec};
use afg_json::{Json, ToJson};

/// Corpus-wide verification throughput: total verification wall over total
/// candidate executions, in nanoseconds per input.
fn sweep_ns_per_input(rows: &[Table1Row]) -> f64 {
    let inputs: u64 = rows.iter().map(|r| r.sweep_inputs).sum();
    if inputs == 0 {
        return 0.0;
    }
    let wall: std::time::Duration = rows.iter().map(|r| r.verify_elapsed).sum();
    wall.as_nanos() as f64 / inputs as f64
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = CliOptions::parse_or_exit(&args, 40);
    let engine = options.engine();
    let (attempts, seed) = (options.attempts, options.seed);
    let mut config = afg_bench::experiment_config();
    options.apply_to(&mut config);

    if !options.json {
        println!("Table 1: attempts corrected and grading time per benchmark");
        println!(
            "(synthetic corpus: {attempts} attempts per benchmark, seed {seed}, {} workers, {} backend, {} sweeps)",
            engine.workers(),
            options.backend.name(),
            options.sweep.name()
        );
        println!();
        println!("{}", Table1Row::header());
    }

    let mut rows = Vec::new();
    let mut total_incorrect = 0usize;
    let mut total_fixed = 0usize;
    for problem in problems::all_problems() {
        let spec = CorpusSpec::table1_like(attempts, seed ^ problem.id.len() as u64);
        let (row, _records, _report) =
            run_problem_on(&problem, None, &spec, config.clone(), &engine);
        if !options.json {
            println!("{}", row.format_row());
        }
        total_incorrect += row.incorrect;
        total_fixed += row.generated_feedback;
        rows.push(row);
    }

    let overall = if total_incorrect == 0 {
        0.0
    } else {
        100.0 * total_fixed as f64 / total_incorrect as f64
    };
    // Aggregate solver work across the corpus — the trend line CI prints
    // into its job log.
    let solver = Json::object([
        (
            "sat_conflicts",
            rows.iter().map(|r| r.sat_conflicts).sum::<u64>().to_json(),
        ),
        (
            "sat_propagations",
            rows.iter()
                .map(|r| r.sat_propagations)
                .sum::<u64>()
                .to_json(),
        ),
        (
            "sat_learnts",
            rows.iter().map(|r| r.sat_learnts).sum::<u64>().to_json(),
        ),
        (
            "restarts",
            rows.iter().map(|r| r.restarts).sum::<u64>().to_json(),
        ),
        (
            "timeouts",
            rows.iter().map(|r| r.timeouts).sum::<usize>().to_json(),
        ),
        (
            "sweeps",
            rows.iter().map(|r| r.sweeps).sum::<u64>().to_json(),
        ),
        (
            "sweep_inputs",
            rows.iter().map(|r| r.sweep_inputs).sum::<u64>().to_json(),
        ),
        (
            "verify_ms",
            rows.iter()
                .map(|r| r.verify_elapsed)
                .sum::<std::time::Duration>()
                .to_json(),
        ),
        ("sweep_ns_per_input", sweep_ns_per_input(&rows).to_json()),
    ]);

    if options.json {
        // Machine-readable mode for CI and scripts: one JSON document on
        // stdout, nothing else.
        let doc = Json::object([
            ("attempts", attempts.to_json()),
            ("seed", seed.to_json()),
            ("workers", engine.workers().to_json()),
            ("backend", Json::str(options.backend.name())),
            ("sweep", Json::str(options.sweep.name())),
            ("rows", rows.to_json()),
            ("solver", solver),
            (
                "overall",
                Json::object([
                    ("incorrect", total_incorrect.to_json()),
                    ("generated_feedback", total_fixed.to_json()),
                    ("feedback_percent", overall.to_json()),
                ]),
            ),
        ]);
        println!("{doc}");
    } else {
        println!();
        println!(
            "Overall: {total_fixed}/{total_incorrect} incorrect attempts repaired ({overall:.1}%); the paper reports 64%."
        );
        println!(
            "Verification: {} sweeps, {} candidate executions, {:.0} ns/input ({} sweeps)",
            solver.get("sweeps").and_then(Json::as_i64).unwrap_or(0),
            solver
                .get("sweep_inputs")
                .and_then(Json::as_i64)
                .unwrap_or(0),
            sweep_ns_per_input(&rows),
            options.sweep.name()
        );
        println!(
            "Solver: {} conflicts, {} learnts, {} propagations, {} restarts, {} timeouts ({} backend)",
            solver.get("sat_conflicts").and_then(Json::as_i64).unwrap_or(0),
            solver.get("sat_learnts").and_then(Json::as_i64).unwrap_or(0),
            solver
                .get("sat_propagations")
                .and_then(Json::as_i64)
                .unwrap_or(0),
            solver.get("restarts").and_then(Json::as_i64).unwrap_or(0),
            solver.get("timeouts").and_then(Json::as_i64).unwrap_or(0),
            options.backend.name()
        );
    }
}
