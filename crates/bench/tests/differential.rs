//! Differential test of the synthesis back ends (CEGIS vs enumeration vs
//! portfolio).
//!
//! For every corpus problem and a seeded mutant sweep over its correct
//! variants, all three back ends must agree on the verdict: already
//! correct, repairable at the *same* minimal cost, or not repairable
//! within the bounds.  The search budget is candidate-bounded and the cost
//! bound is 1 (single injected mistake), so every back end runs its search
//! space to exhaustion and the comparison is deterministic — a divergence
//! is a real bug in one of the engines, not budget noise.  Portfolio
//! outcomes must additionally be definitive (first proof wins) and name
//! the winning strategy in their stats.

use std::time::Duration;

use afg_corpus::problems;
use afg_corpus::rng::StdRng;
use afg_eml::apply_error_model;
use afg_synth::{Backend, SynthesisConfig, SynthesisOutcome};

fn config() -> SynthesisConfig {
    SynthesisConfig {
        max_cost: 1,
        max_candidates: 200_000,
        time_budget: Duration::from_secs(600),
    }
}

/// Collapses an outcome into the comparable verdict.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum Verdict {
    Correct,
    Fixed(usize),
    NoRepair,
}

fn verdict(outcome: &SynthesisOutcome, context: &str) -> Verdict {
    match outcome {
        SynthesisOutcome::AlreadyCorrect => Verdict::Correct,
        SynthesisOutcome::Fixed(solution) => {
            assert!(
                solution.minimal,
                "{context}: exhaustive budgets must prove minimality"
            );
            Verdict::Fixed(solution.cost)
        }
        SynthesisOutcome::NoRepairFound(_) => Verdict::NoRepair,
        SynthesisOutcome::Timeout(_) => {
            panic!("{context}: candidate-bounded search must not time out")
        }
    }
}

#[test]
fn all_backends_agree_on_repair_cost_across_the_corpus() {
    let mut checked = 0usize;
    for problem in problems::all_problems() {
        let grader = problem.autograder(afg_core::GraderConfig::fast());
        let oracle = grader.oracle();
        let model = grader.model();

        // The submissions under test: each correct variant untouched (must
        // grade AlreadyCorrect) plus seeded single-mutation mutants.
        let mut submissions = Vec::new();
        for (variant_index, seed_source) in problem.mutation_seeds().into_iter().enumerate() {
            let clean = afg_parser::parse_program(seed_source).expect("corpus seeds parse");
            if variant_index == 0 {
                submissions.push((format!("{}/clean", problem.id), clean.clone()));
            }
            for seed in 0..2u64 {
                let mut mutant = clean.clone();
                let mut rng = StdRng::seed_from_u64(
                    seed ^ (problem.id.len() as u64) << 8 ^ (variant_index as u64) << 16,
                );
                afg_corpus::mutate_program(&mut mutant, 1, &mut rng);
                submissions.push((format!("{}/v{variant_index}s{seed}", problem.id), mutant));
            }
        }

        for (label, submission) in submissions {
            let Ok(choice_program) = apply_error_model(&submission, Some(problem.entry), model)
            else {
                continue; // mutant lost its entry function — nothing to compare
            };
            let cegis = Backend::Cegis.synthesize(&choice_program, oracle, &config());
            let enumerative = Backend::Enumerative.synthesize(&choice_program, oracle, &config());
            let portfolio = Backend::Portfolio.synthesize(&choice_program, oracle, &config());

            let cegis_verdict = verdict(&cegis, &format!("{label} cegis"));
            let enum_verdict = verdict(&enumerative, &format!("{label} enum"));
            let portfolio_verdict = verdict(&portfolio, &format!("{label} portfolio"));
            assert_eq!(
                cegis_verdict, enum_verdict,
                "{label}: cegis and enumeration disagree ({cegis:?} vs {enumerative:?})"
            );
            assert_eq!(
                cegis_verdict, portfolio_verdict,
                "{label}: portfolio disagrees with its members"
            );

            // The portfolio's result is a proof and its stats attribute the
            // win to one of the racing strategies.
            assert!(portfolio.is_definitive(), "{label}: portfolio must prove");
            if let Some(stats) = portfolio.stats() {
                assert!(
                    ["cegis", "enum"].contains(&stats.strategy),
                    "{label}: portfolio stats name '{}' as winner",
                    stats.strategy
                );
            }
            checked += 1;
        }
    }
    assert!(
        checked >= problems::all_problems().len(),
        "the sweep must exercise every problem (checked {checked})"
    );
}
