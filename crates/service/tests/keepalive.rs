//! Keep-alive safety regression tests for the raw HTTP layer.
//!
//! The dangerous failure mode on a keep-alive connection is *desync*: the
//! server answers a request without consuming exactly its body, and the
//! leftover (or swallowed) bytes are parsed as the next request — request
//! smuggling in miniature.  The most tempting spot to get this wrong is
//! the over-limit path: a request whose declared `Content-Length` exceeds
//! the body cap is rejected *before* its body is read, so the server must
//! either drain those bytes or close the connection.  Both I/O cores
//! close; these tests pin that down by pipelining a follow-up request
//! behind the rejected one and asserting it is never misparsed — under
//! `--io epoll` and `--io threads` alike.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use afg_service::{start, IoMode, ServiceConfig};

/// Sends raw bytes on one connection and collects everything the server
/// sends back until it closes or idles out.
fn raw_exchange(io: IoMode, raw: &[u8]) -> String {
    let handle = start(ServiceConfig {
        io,
        threads: 2,
        keep_alive_timeout: Duration::from_millis(300),
        ..ServiceConfig::default()
    })
    .expect("bind an ephemeral port");
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.write_all(raw).expect("write request bytes");
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut response = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => response.extend_from_slice(&buf[..n]),
            // Idle timeout after the server kept the connection open.
            Err(_) => break,
        }
    }
    drop(stream);
    handle.shutdown();
    String::from_utf8_lossy(&response).into_owned()
}

/// The status codes of every response in a raw byte stream, in order.
/// (Responses are not newline-terminated, so scanning by line would miss a
/// status line glued to the previous body.)
fn status_codes(response: &str) -> Vec<&str> {
    response
        .match_indices("HTTP/1.1 ")
        .map(|(at, _)| &response[at + 9..at + 12])
        .collect()
}

fn over_limit_content_length_gets_413_and_a_safe_connection_state(io: IoMode) {
    // Declared Content-Length far above MAX_BODY, followed by bytes that —
    // if the server kept reading the stream as requests without draining
    // the body — would be misparsed: first some body garbage (an invalid
    // request line), then a pipelined, perfectly valid request.
    let mut raw = Vec::new();
    raw.extend_from_slice(
        b"POST /problems HTTP/1.1\r\n\
          Host: x\r\n\
          Content-Length: 999999999\r\n\
          \r\n",
    );
    raw.extend_from_slice(b"this is body garbage that must not become a request\r\n");
    raw.extend_from_slice(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");

    let response = raw_exchange(io, &raw);
    assert!(
        response.starts_with("HTTP/1.1 413 "),
        "over-limit request must be rejected with 413, got:\n{response}"
    );
    // Safe state = drained (a later well-formed response) or closed (no
    // later response at all).  What must NEVER happen is the body bytes
    // being parsed as a request — that would surface as a 400 response
    // after the 413.
    let statuses = status_codes(&response);
    assert!(
        !statuses.iter().skip(1).any(|code| *code == "400"),
        "body bytes were misparsed as a request (desync):\n{response}"
    );
    match statuses.as_slice() {
        ["413"] => {
            // Closed: the 413 must have announced it so the client does not
            // pipeline in vain.
            assert!(
                response.contains("Connection: close"),
                "a closing rejection must say Connection: close:\n{response}"
            );
        }
        ["413", "200"] => {
            // Drained: the pipelined request was answered normally.
        }
        other => panic!("unexpected response sequence {other:?}:\n{response}"),
    }
}

fn within_limit_bodies_keep_the_connection_in_sync(io: IoMode) {
    // The positive control: a request whose body IS fully read must leave
    // the connection aligned so the pipelined follow-up is answered.
    let body = br#"{"source": 1}"#;
    let mut raw = Vec::new();
    raw.extend_from_slice(
        format!(
            "POST /problems/ghost/grade HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    );
    raw.extend_from_slice(body);
    raw.extend_from_slice(b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");

    let response = raw_exchange(io, &raw);
    assert_eq!(
        status_codes(&response),
        vec!["404", "200"],
        "both pipelined requests must be answered in order:\n{response}"
    );
}

#[test]
fn over_limit_413_is_safe_under_epoll() {
    over_limit_content_length_gets_413_and_a_safe_connection_state(IoMode::Epoll);
}

#[test]
fn over_limit_413_is_safe_under_threads() {
    over_limit_content_length_gets_413_and_a_safe_connection_state(IoMode::Threads);
}

#[test]
fn within_limit_pipelining_stays_in_sync_under_epoll() {
    within_limit_bodies_keep_the_connection_in_sync(IoMode::Epoll);
}

#[test]
fn within_limit_pipelining_stays_in_sync_under_threads() {
    within_limit_bodies_keep_the_connection_in_sync(IoMode::Threads);
}
