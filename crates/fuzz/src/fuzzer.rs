//! The coverage-guided loop: seed from the committed corpus, mutate,
//! execute, retain inputs that light new edges, and minimize any crash or
//! divergence into a ready-to-paste regression test.  Fully deterministic
//! for a fixed `(target, seed, corpus, max_execs)` — CI runs the parser
//! target twice and diffs the JSON summaries.

use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;

use afg_json::Json;

use crate::cover::CoverageMap;
use crate::minimize::minimize;
use crate::mutate::mutate;
use crate::rng::SplitMix64;
use crate::targets::{run_target, TargetKind, Verdict};

/// One fuzzing run's configuration.
pub struct Config {
    pub target: TargetKind,
    pub max_execs: u64,
    pub seed: u64,
    /// Directory of seed inputs; loaded in sorted filename order.
    pub corpus_dir: Option<PathBuf>,
    /// Where minimized reproducers are written (only when a finding
    /// occurs).  `None` disables emission.
    pub findings_dir: Option<PathBuf>,
    /// Mutants are truncated to this length.
    pub max_len: usize,
}

impl Config {
    #[must_use]
    pub fn new(target: TargetKind, max_execs: u64, seed: u64) -> Config {
        Config {
            target,
            max_execs,
            seed,
            corpus_dir: None,
            findings_dir: None,
            max_len: 4096,
        }
    }
}

/// A deduplicated crash or divergence, post-minimization.
pub struct Finding {
    /// `"crash"` or `"divergence"`.
    pub kind: &'static str,
    /// The panic message or differential mismatch description.
    pub message: String,
    /// Minimized input bytes.
    pub input: Vec<u8>,
    /// Path of the emitted reproducer snippet, if any.
    pub reproducer: Option<String>,
}

/// End-of-run report; serialized to JSON by the `fuzz` binary.
pub struct Summary {
    pub target: TargetKind,
    pub seed: u64,
    pub max_execs: u64,
    pub execs: u64,
    pub coverage_enabled: bool,
    pub corpus_files: usize,
    pub retained: usize,
    pub edges: usize,
    pub coverage_signature: u64,
    pub findings: Vec<Finding>,
}

impl Summary {
    #[must_use]
    pub fn new_crashes(&self) -> usize {
        self.findings.iter().filter(|f| f.kind == "crash").count()
    }

    #[must_use]
    pub fn new_divergences(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.kind == "divergence")
            .count()
    }

    /// The JSON document CI asserts over with `jq`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::object([
            ("target", Json::str(self.target.name())),
            ("seed", Json::Int(self.seed as i64)),
            ("max_execs", Json::Int(self.max_execs as i64)),
            ("execs", Json::Int(self.execs as i64)),
            ("coverage_enabled", Json::Bool(self.coverage_enabled)),
            ("corpus_files", Json::Int(self.corpus_files as i64)),
            ("retained", Json::Int(self.retained as i64)),
            ("edges", Json::Int(self.edges as i64)),
            (
                "coverage_signature",
                Json::str(format!("{:016x}", self.coverage_signature)),
            ),
            ("new_crashes", Json::Int(self.new_crashes() as i64)),
            ("new_divergences", Json::Int(self.new_divergences() as i64)),
            (
                "findings",
                Json::Array(
                    self.findings
                        .iter()
                        .map(|f| {
                            Json::object([
                                ("kind", Json::str(f.kind)),
                                ("message", Json::str(&*f.message)),
                                ("len", Json::Int(f.input.len() as i64)),
                                ("input", Json::str(escape_bytes(&f.input))),
                                (
                                    "reproducer",
                                    match &f.reproducer {
                                        Some(path) => Json::str(&**path),
                                        None => Json::Null,
                                    },
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Built-in seeds used when the corpus directory is absent or empty, so
/// `fuzz --target X` works out of the box.
#[must_use]
pub fn builtin_seeds(target: TargetKind) -> Vec<Vec<u8>> {
    let texts: &[&str] = match target {
        TargetKind::Eml => &[
            "ret: return ?a -> return [?a + 1, ?a - 1]\n",
            "cmp: ?a < ?b -> [?a <= ?b, ?a > ?b]\n",
        ],
        TargetKind::Parser | TargetKind::Vm => &[
            "def f_int(x):\n    if x > 0:\n        return x\n    return 0 - x\n",
            "def g_int(n):\n    total = 0\n    while n > 0:\n        total = total + n\n        n = n - 1\n    return total\n",
        ],
        TargetKind::Json => &[
            "{\"a\": [1, 2.5, -3], \"b\": {\"c\": \"\\u0041\", \"d\": [true, false, null]}}",
            "[[[[0]]]]",
        ],
        TargetKind::Http => &[
            "GET /healthz HTTP/1.1\r\nHost: example\r\nConnection: close\r\n\r\n",
            "POST /problems HTTP/1.1\r\nContent-Length: 15\r\n\r\n{\"problem\":\"x\"}",
            "GET /stats HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n",
        ],
        TargetKind::Arith => {
            // One chunk per operator over boundary operands.
            let mut seeds = Vec::new();
            let mut bytes = Vec::new();
            for (op, a, b) in [
                (0u8, i64::MAX, 1i64),
                (2, i64::MIN, -1),
                (3, i64::MIN, -1),
                (4, -7, -3),
                (5, -1, 1_000_000),
            ] {
                bytes.push(op);
                bytes.extend_from_slice(&a.to_le_bytes());
                bytes.extend_from_slice(&b.to_le_bytes());
            }
            seeds.push(bytes);
            return seeds;
        }
    };
    texts.iter().map(|t| t.as_bytes().to_vec()).collect()
}

/// Executes one input: resets the edge map, runs the target, merges the
/// snapshot.  Returns the verdict and whether coverage was novel.
fn execute(target: TargetKind, data: &[u8], coverage: &mut CoverageMap) -> (Verdict, bool) {
    afg_cov::reset();
    let verdict = run_target(target, data);
    let novel = coverage.merge(&afg_cov::snapshot());
    (verdict, novel)
}

/// Stable deduplication key for a finding: its class plus the first line
/// of its message (panic locations and argument lists stay, counters and
/// full input dumps do not).
fn dedup_key(verdict: &Verdict) -> Option<String> {
    match verdict {
        Verdict::Crash(message) => Some(format!("crash:{}", first_line(message))),
        Verdict::Divergence(message) => Some(format!("divergence:{}", first_line(message))),
        _ => None,
    }
}

fn first_line(message: &str) -> &str {
    message.lines().next().unwrap_or("")
}

/// Renders bytes as the contents of a Rust byte-string literal.
#[must_use]
pub fn escape_bytes(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len() * 2);
    for &b in data {
        match b {
            b'"' => out.push_str("\\\""),
            b'\\' => out.push_str("\\\\"),
            b'\n' => out.push_str("\\n"),
            b'\t' => out.push_str("\\t"),
            b'\r' => out.push_str("\\r"),
            0x20..=0x7E => out.push(b as char),
            _ => out.push_str(&format!("\\x{b:02X}")),
        }
    }
    out
}

/// The ready-to-paste `#[test]` snippet for a minimized finding.
#[must_use]
pub fn reproducer_snippet(target: TargetKind, finding_index: usize, f: &Finding) -> String {
    let target_variant = match target {
        TargetKind::Eml => "Eml",
        TargetKind::Parser => "Parser",
        TargetKind::Json => "Json",
        TargetKind::Http => "Http",
        TargetKind::Arith => "Arith",
        TargetKind::Vm => "Vm",
    };
    format!(
        "// Minimized {kind} reproducer emitted by `fuzz --target {name}`.\n\
         // {message}\n\
         // Paste into crates/fuzz/tests/ (or port to the owning crate) and\n\
         // keep it after fixing the bug.\n\
         #[test]\n\
         fn fuzz_{name}_regression_{finding_index}() {{\n\
         \x20   let input: &[u8] = b\"{input}\";\n\
         \x20   let verdict = afg_fuzz::run_target(afg_fuzz::TargetKind::{target_variant}, input);\n\
         \x20   assert!(!verdict.is_finding(), \"{{verdict:?}}\");\n\
         }}\n",
        kind = f.kind,
        name = target.name(),
        message = first_line(&f.message),
        input = escape_bytes(&f.input),
    )
}

/// Runs the full loop and returns the summary.
#[must_use]
pub fn run(config: &Config) -> Summary {
    // Silence panic backtraces while targets run: crashes are expected
    // events here, captured via `catch_unwind` and reported in the
    // summary, not on stderr.
    let previous_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let summary = run_inner(config);
    std::panic::set_hook(previous_hook);
    summary
}

fn run_inner(config: &Config) -> Summary {
    let mut coverage = CoverageMap::new();
    let mut rng = SplitMix64::new(config.seed);
    let mut execs: u64 = 0;
    let mut findings: Vec<Finding> = Vec::new();
    let mut seen_keys: BTreeSet<String> = BTreeSet::new();

    // Load the corpus in sorted filename order for determinism.
    let mut corpus: Vec<Vec<u8>> = Vec::new();
    let mut corpus_files = 0;
    if let Some(dir) = &config.corpus_dir {
        let mut paths: Vec<PathBuf> = fs::read_dir(dir)
            .into_iter()
            .flatten()
            .flatten()
            .map(|entry| entry.path())
            .filter(|path| path.is_file())
            .collect();
        paths.sort();
        for path in paths {
            if let Ok(bytes) = fs::read(&path) {
                corpus.push(bytes);
                corpus_files += 1;
            }
        }
    }
    if corpus.is_empty() {
        corpus = builtin_seeds(config.target);
    }

    // Queue of retained inputs; seeded with the corpus.
    let mut queue: Vec<Vec<u8>> = Vec::new();
    for input in &corpus {
        if execs >= config.max_execs {
            break;
        }
        let (verdict, _novel) = execute(config.target, input, &mut coverage);
        execs += 1;
        record_finding(config, &verdict, input, &mut seen_keys, &mut findings);
        queue.push(input.clone());
    }
    if queue.is_empty() {
        queue.push(Vec::new());
    }
    let seed_count = queue.len();

    // Main mutation loop.
    while execs < config.max_execs {
        let base = &queue[rng.below(queue.len())];
        let candidate = mutate(base, &mut rng, config.max_len);
        let (verdict, novel) = execute(config.target, &candidate, &mut coverage);
        execs += 1;
        let found = record_finding(config, &verdict, &candidate, &mut seen_keys, &mut findings);
        // Retain coverage novelty, but never retain finding inputs — the
        // loop should explore the healthy frontier, not re-crash forever.
        if novel && !found {
            queue.push(candidate);
        }
    }

    Summary {
        target: config.target,
        seed: config.seed,
        max_execs: config.max_execs,
        execs,
        coverage_enabled: afg_cov::ENABLED,
        corpus_files,
        retained: queue.len() - seed_count,
        edges: coverage.edges(),
        coverage_signature: coverage.signature(),
        findings,
    }
}

/// If `verdict` is a novel finding, minimizes it, emits a reproducer, and
/// appends it.  Returns true if the verdict was a finding (novel or not).
fn record_finding(
    config: &Config,
    verdict: &Verdict,
    input: &[u8],
    seen_keys: &mut BTreeSet<String>,
    findings: &mut Vec<Finding>,
) -> bool {
    let Some(key) = dedup_key(verdict) else {
        return false;
    };
    if !seen_keys.insert(key.clone()) {
        return true;
    }
    let kind = match verdict {
        Verdict::Crash(_) => "crash",
        _ => "divergence",
    };
    let message = match verdict {
        Verdict::Crash(m) | Verdict::Divergence(m) => m.clone(),
        _ => unreachable!(),
    };
    // Shrink while the candidate still produces a finding with the same
    // deduplication key.
    let target = config.target;
    let minimized = minimize(input, &mut |candidate: &[u8]| {
        dedup_key(&run_target(target, candidate)).as_deref() == Some(key.as_str())
    });
    let mut finding = Finding {
        kind,
        message,
        input: minimized,
        reproducer: None,
    };
    if let Some(dir) = &config.findings_dir {
        let index = findings.len();
        let snippet = reproducer_snippet(target, index, &finding);
        let path = dir.join(format!("{}-{index:02}.rs", target.name()));
        if fs::create_dir_all(dir).is_ok() && fs::write(&path, snippet).is_ok() {
            finding.reproducer = Some(path.display().to_string());
        }
    }
    findings.push(finding);
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_seeds_are_healthy() {
        for target in TargetKind::ALL {
            for seed in builtin_seeds(target) {
                let verdict = run_target(target, &seed);
                assert!(!verdict.is_finding(), "{target:?}: {verdict:?}");
            }
        }
    }

    #[test]
    fn short_runs_are_deterministic() {
        let run_once = || {
            let config = Config::new(TargetKind::Parser, 300, 1);
            let summary = run(&config);
            (
                summary.execs,
                summary.retained,
                summary.edges,
                summary.coverage_signature,
                summary.findings.len(),
            )
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn escaping_round_trips_through_rust_syntax() {
        assert_eq!(escape_bytes(b"a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_bytes(&[0x00, 0xFF]), "\\x00\\xFF");
    }

    #[test]
    fn summary_json_has_the_ci_contract_fields() {
        let config = Config::new(TargetKind::Json, 50, 7);
        let summary = run(&config);
        let json = summary.to_json();
        assert!(json.get("new_crashes").and_then(Json::as_i64).is_some());
        assert!(json.get("new_divergences").and_then(Json::as_i64).is_some());
        assert!(json
            .get("coverage_signature")
            .and_then(Json::as_str)
            .is_some());
        assert_eq!(json.get("target").and_then(Json::as_str), Some("json"));
    }
}
