//! Choice-aware evaluation: interpreting an M̃PY [`ChoiceProgram`] directly.
//!
//! The CEGIS inner loop checks thousands of candidate corrections per
//! submission.  Concretising each candidate into a fresh MPY [`Program`]
//! (`ChoiceProgram::concretize`) clones the entire AST per candidate — pure
//! allocation overhead, since the candidate differs from the original only
//! in which option each choice site takes.  [`ChoiceEvaluator`] removes that
//! cost: it walks the *shared* choice AST and consults a
//! [`ChoiceAssignment`] at each choice site, so checking a candidate
//! allocates nothing beyond the values it computes.
//!
//! Evaluation is defined to agree *exactly* with concretise-then-interpret —
//! including the fuel accounting, so a program that runs out of fuel under
//! one evaluator runs out at the same step under the other.  The choice
//! nodes themselves are free: a `CExpr::Choice` charges nothing (it
//! disappears during concretisation) while every node with a concrete
//! counterpart charges exactly one fuel unit, like [`Interpreter::eval`].
//! The `properties` integration test enforces this agreement differentially
//! across the benchmark corpus.

use std::sync::Arc;

use afg_ast::Program;
use afg_eml::{
    concretize_expr, CExpr, CStmt, CStmtKind, ChoiceAssignment, ChoiceProgram, OpChoice,
};

use crate::builtins;
use crate::error::RuntimeError;
use crate::interp::{
    binary_op, compare_op, expr_as_target, iterable_items, load_index, slice_value, ChoiceCtx,
    ExecLimits, Flow, Frame, Interpreter, Outcome,
};
use crate::value::Value;

/// A reusable evaluator for one candidate space (one transformed
/// submission).
///
/// Construction clones the submission's helper functions once; evaluating a
/// candidate afterwards materialises nothing.  The evaluator is cheap to
/// build and immutable, so it can be shared read-only across grading
/// threads.
#[derive(Debug, Clone)]
pub struct ChoiceEvaluator<'p> {
    program: &'p ChoiceProgram,
    /// The student's helper functions, packaged as a plain program so the
    /// ordinary interpreter machinery can resolve calls to them.
    helpers: Program,
    /// Entry-function parameter names interned once, so binding arguments
    /// on every candidate run clones pointers instead of `String`s.
    param_keys: Vec<Arc<str>>,
    limits: ExecLimits,
}

impl<'p> ChoiceEvaluator<'p> {
    /// Creates an evaluator for the candidate space of `program`.
    pub fn new(program: &'p ChoiceProgram, limits: ExecLimits) -> ChoiceEvaluator<'p> {
        let mut helpers = Program::new();
        helpers.funcs.extend(program.other_funcs.iter().cloned());
        ChoiceEvaluator {
            program,
            helpers,
            param_keys: program
                .func
                .params
                .iter()
                .map(|p| Arc::from(p.name.as_str()))
                .collect(),
            limits,
        }
    }

    /// The choice program being evaluated.
    pub fn program(&self) -> &'p ChoiceProgram {
        self.program
    }

    /// Runs the candidate selected by `assignment` on `args` and returns its
    /// outcome, exactly as `concretize(assignment)` + [`crate::run_function`]
    /// would — without building the candidate AST.
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`] raised during execution.
    pub fn run(
        &self,
        assignment: &ChoiceAssignment,
        args: &[Value],
    ) -> Result<Outcome, RuntimeError> {
        let mut interp = Interpreter::with_limits(&self.helpers, self.limits);
        interp.choice = Some(ChoiceCtx {
            func: &self.program.func,
            assignment,
            param_keys: &self.param_keys,
        });
        let value = interp.call_choice_func(args.to_vec())?;
        Ok(Outcome {
            value,
            output: std::mem::take(&mut interp.output),
        })
    }
}

impl<'p> Interpreter<'p> {
    /// Calls the choice-bearing entry function of the active [`ChoiceCtx`].
    pub(crate) fn call_choice_func(&mut self, args: Vec<Value>) -> Result<Value, RuntimeError> {
        let ctx = self.choice.as_ref().expect("choice context is set");
        let (func, assignment, param_keys) = (ctx.func, ctx.assignment, ctx.param_keys);
        if self.depth >= self.limits.max_recursion {
            return Err(RuntimeError::RecursionLimit);
        }
        if func.params.len() != args.len() {
            return Err(RuntimeError::Type(format!(
                "{}() takes {} arguments ({} given)",
                func.name,
                func.params.len(),
                args.len()
            )));
        }
        let mut frame = Frame::new();
        for (key, arg) in param_keys.iter().zip(args) {
            frame.insert(Arc::clone(key), arg);
        }
        self.depth += 1;
        let flow = self.exec_cblock(&func.body, assignment, &mut frame);
        self.depth -= 1;
        match flow? {
            Flow::Return(v) => Ok(v),
            _ => Ok(Value::None),
        }
    }

    fn exec_cblock(
        &mut self,
        stmts: &[CStmt],
        assignment: &ChoiceAssignment,
        frame: &mut Frame,
    ) -> Result<Flow, RuntimeError> {
        for stmt in stmts {
            match self.exec_cstmt(stmt, assignment, frame)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    /// Mirrors `exec_stmt` over the choice AST.  `ChoiceBlock` splices the
    /// selected block without charging fuel — it has no concrete
    /// counterpart — while every other statement charges one unit, exactly
    /// like its concretised form.
    fn exec_cstmt(
        &mut self,
        stmt: &CStmt,
        assignment: &ChoiceAssignment,
        frame: &mut Frame,
    ) -> Result<Flow, RuntimeError> {
        if let CStmtKind::ChoiceBlock(id, options) = &stmt.kind {
            let selected = assignment.selected(*id).min(options.len() - 1);
            return self.exec_cblock(&options[selected], assignment, frame);
        }
        self.charge(1)?;
        match &stmt.kind {
            CStmtKind::Assign(target, value) => {
                let value = self.eval_cexpr(value, assignment, frame)?;
                self.assign(target, value, frame)?;
                Ok(Flow::Normal)
            }
            CStmtKind::AugAssign(target, op, value) => {
                let rhs = self.eval_cexpr(value, assignment, frame)?;
                let current = self.read_target(target, frame)?;
                let updated = binary_op(*op, &current, &rhs)?;
                self.assign(target, updated, frame)?;
                Ok(Flow::Normal)
            }
            CStmtKind::ExprStmt(expr) => {
                self.eval_cexpr(expr, assignment, frame)?;
                Ok(Flow::Normal)
            }
            CStmtKind::If(cond, then_body, else_body) => {
                if self.eval_cexpr(cond, assignment, frame)?.is_truthy() {
                    self.exec_cblock(then_body, assignment, frame)
                } else {
                    self.exec_cblock(else_body, assignment, frame)
                }
            }
            CStmtKind::While(cond, body) => {
                while self.eval_cexpr(cond, assignment, frame)?.is_truthy() {
                    self.charge(1)?;
                    match self.exec_cblock(body, assignment, frame)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            CStmtKind::For(var, iter, body) => {
                let items = iterable_items(&self.eval_cexpr(iter, assignment, frame)?)?;
                let key: Arc<str> = Arc::from(var.as_str());
                for item in items {
                    self.charge(1)?;
                    frame.insert(Arc::clone(&key), item);
                    match self.exec_cblock(body, assignment, frame)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            CStmtKind::Return(expr) => {
                let value = match expr {
                    Some(e) => self.eval_cexpr(e, assignment, frame)?,
                    None => Value::None,
                };
                Ok(Flow::Return(value))
            }
            CStmtKind::Print(args) => {
                let mut parts = Vec::new();
                for arg in args {
                    parts.push(self.eval_cexpr(arg, assignment, frame)?.display_str());
                }
                self.output.push(parts.join(" "));
                Ok(Flow::Normal)
            }
            CStmtKind::Pass => Ok(Flow::Normal),
            CStmtKind::Break => Ok(Flow::Break),
            CStmtKind::Continue => Ok(Flow::Continue),
            CStmtKind::ChoiceBlock(..) => unreachable!("handled before charging"),
        }
    }

    /// Mirrors `eval` over the choice AST.  `Plain` delegates to the
    /// ordinary evaluator and `Choice` forwards to the selected option for
    /// free; every other node charges one fuel unit like its concretised
    /// counterpart.
    fn eval_cexpr(
        &mut self,
        expr: &CExpr,
        assignment: &ChoiceAssignment,
        frame: &mut Frame,
    ) -> Result<Value, RuntimeError> {
        match expr {
            CExpr::Plain(e) => return self.eval(e, frame),
            CExpr::Choice(id, options) => {
                let selected = assignment.selected(*id).min(options.len() - 1);
                return self.eval_cexpr(&options[selected], assignment, frame);
            }
            _ => {}
        }
        self.charge(1)?;
        match expr {
            CExpr::Plain(_) | CExpr::Choice(..) => unreachable!("handled before charging"),
            CExpr::List(items) => {
                let mut values = Vec::with_capacity(items.len());
                for item in items {
                    values.push(self.eval_cexpr(item, assignment, frame)?);
                }
                Ok(Value::List(values))
            }
            CExpr::Tuple(items) => {
                let mut values = Vec::with_capacity(items.len());
                for item in items {
                    values.push(self.eval_cexpr(item, assignment, frame)?);
                }
                Ok(Value::Tuple(values))
            }
            CExpr::Index(base, index) => {
                let base_value = self.eval_cexpr(base, assignment, frame)?;
                let index_value = self.eval_cexpr(index, assignment, frame)?;
                load_index(&base_value, &index_value)
            }
            CExpr::Slice(base, lower, upper) => {
                let base_value = self.eval_cexpr(base, assignment, frame)?;
                let lower = match lower {
                    Some(e) => Some(self.eval_cexpr(e, assignment, frame)?),
                    None => None,
                };
                let upper = match upper {
                    Some(e) => Some(self.eval_cexpr(e, assignment, frame)?),
                    None => None,
                };
                slice_value(&base_value, lower.as_ref(), upper.as_ref())
            }
            CExpr::BinOp(op, left, right) => {
                let l = self.eval_cexpr(left, assignment, frame)?;
                let r = self.eval_cexpr(right, assignment, frame)?;
                binary_op(select_op(op, assignment), &l, &r)
            }
            CExpr::UnaryOp(op, operand) => {
                let v = self.eval_cexpr(operand, assignment, frame)?;
                crate::interp::unary_op(*op, &v)
            }
            CExpr::Compare(op, left, right) => {
                let l = self.eval_cexpr(left, assignment, frame)?;
                let r = self.eval_cexpr(right, assignment, frame)?;
                compare_op(select_op(op, assignment), &l, &r)
            }
            CExpr::BoolExpr(op, left, right) => {
                let l = self.eval_cexpr(left, assignment, frame)?;
                match op {
                    afg_ast::ops::BoolOp::And => {
                        if !l.is_truthy() {
                            Ok(l)
                        } else {
                            self.eval_cexpr(right, assignment, frame)
                        }
                    }
                    afg_ast::ops::BoolOp::Or => {
                        if l.is_truthy() {
                            Ok(l)
                        } else {
                            self.eval_cexpr(right, assignment, frame)
                        }
                    }
                }
            }
            CExpr::Call(name, args) => {
                let mut values = Vec::with_capacity(args.len());
                for arg in args {
                    values.push(self.eval_cexpr(arg, assignment, frame)?);
                }
                self.call_named(name, values)
            }
            CExpr::MethodCall(recv, method, args) => {
                let mut receiver = self.eval_cexpr(recv, assignment, frame)?;
                let mut values = Vec::with_capacity(args.len());
                for arg in args {
                    values.push(self.eval_cexpr(arg, assignment, frame)?);
                }
                let (result, mutated) = builtins::call_method(&mut receiver, method, &values)?;
                if mutated {
                    // The write-back target is the receiver's concrete shape
                    // under this assignment (a variable or index chain).  A
                    // plain receiver — the common case — skips the
                    // concretisation entirely.
                    let target = match &**recv {
                        CExpr::Plain(e) => expr_as_target(e),
                        choiceful => expr_as_target(&concretize_expr(choiceful, assignment)),
                    };
                    if let Some(target) = target {
                        self.assign(&target, receiver, frame)?;
                    }
                }
                Ok(result)
            }
            CExpr::IfExpr(body, cond, orelse) => {
                if self.eval_cexpr(cond, assignment, frame)?.is_truthy() {
                    self.eval_cexpr(body, assignment, frame)
                } else {
                    self.eval_cexpr(orelse, assignment, frame)
                }
            }
        }
    }
}

fn select_op<T: Copy>(op: &OpChoice<T>, assignment: &ChoiceAssignment) -> T {
    match op {
        OpChoice::Fixed(op) => *op,
        OpChoice::Choice(id, options) => {
            let selected = assignment.selected(*id).min(options.len() - 1);
            options[selected]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afg_eml::{apply_error_model, library, ChoiceId, ErrorModel};
    use afg_parser::parse_program;

    use crate::interp::run_function;

    /// Runs both evaluators on the same candidate and asserts they observe
    /// exactly the same behaviour (value, output, or error kind).
    fn assert_agree(
        program: &ChoiceProgram,
        assignment: &ChoiceAssignment,
        args: &[Value],
        limits: ExecLimits,
    ) {
        let evaluator = ChoiceEvaluator::new(program, limits);
        let direct = evaluator.run(assignment, args);
        let concrete = program.concretize(assignment);
        let materialised = run_function(&concrete, Some(&program.func.name), args, limits);
        match (&direct, &materialised) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "outcomes differ for {assignment:?}"),
            (Err(a), Err(b)) => {
                assert_eq!(a.kind(), b.kind(), "error kinds differ for {assignment:?}")
            }
            _ => panic!("evaluators disagree for {assignment:?}: {direct:?} vs {materialised:?}"),
        }
    }

    fn figure_2a_choices() -> ChoiceProgram {
        let student = parse_program(
            "def computeDeriv(poly):\n    deriv = []\n    zero = 0\n    if (len(poly) == 1):\n        return deriv\n    for e in range(0, len(poly)):\n        if (poly[e] == 0):\n            zero += 1\n        else:\n            deriv.append(poly[e]*e)\n    return deriv\n",
        )
        .unwrap();
        apply_error_model(
            &student,
            Some("computeDeriv"),
            &library::compute_deriv_model(),
        )
        .unwrap()
    }

    #[test]
    fn all_single_selections_agree_with_concretisation() {
        let cp = figure_2a_choices();
        let inputs = [
            vec![Value::int_list([2, -3, 1, 4])],
            vec![Value::int_list([7])],
            vec![Value::List(vec![])],
        ];
        for args in &inputs {
            assert_agree(
                &cp,
                &ChoiceAssignment::default_choices(),
                args,
                ExecLimits::fast(),
            );
            for info in &cp.choices {
                for option in 1..info.options.len() {
                    let assignment = ChoiceAssignment::from_pairs([(info.id, option)]);
                    assert_agree(&cp, &assignment, args, ExecLimits::fast());
                }
            }
        }
    }

    #[test]
    fn recursive_entry_calls_reenter_the_choice_function() {
        // recurPower calls itself; the recursive call must see the same
        // choice assignment, not the original program.
        let student = parse_program(
            "def recurPower(base, exp):\n    acc = 0\n    if exp == 0:\n        return acc\n    return base * recurPower(base, exp - 1)\n",
        )
        .unwrap();
        let model = ErrorModel::new("m").with_rule(library::initr());
        let cp = apply_error_model(&student, Some("recurPower"), &model).unwrap();
        // Find the option replacing the erroneous initialiser `acc = 0`.
        let fix = cp
            .choices
            .iter()
            .find_map(|info| {
                info.options
                    .iter()
                    .position(|o| o == "1")
                    .map(|option| (info.id, option))
            })
            .expect("INITR offers constant 1 somewhere");
        let evaluator = ChoiceEvaluator::new(&cp, ExecLimits::fast());
        let args = [Value::Int(3), Value::Int(2)];
        let broken = evaluator
            .run(&ChoiceAssignment::default_choices(), &args)
            .unwrap();
        assert_eq!(broken.value, Value::Int(0), "default keeps the bug");
        let fixed = evaluator
            .run(&ChoiceAssignment::from_pairs([fix]), &args)
            .unwrap();
        assert_eq!(
            fixed.value,
            Value::Int(9),
            "the recursive call sees the fixed base case"
        );
        assert_agree(
            &cp,
            &ChoiceAssignment::from_pairs([fix]),
            &args,
            ExecLimits::fast(),
        );
    }

    #[test]
    fn helper_functions_are_callable_from_the_choice_entry() {
        let student = parse_program(
            "def helper(x):\n    return x * 2\ndef f(n):\n    return helper(n) + 0\n",
        )
        .unwrap();
        let model = ErrorModel::new("m").with_rule(library::const_tweak());
        let cp = apply_error_model(&student, Some("f"), &model).unwrap();
        let evaluator = ChoiceEvaluator::new(&cp, ExecLimits::fast());
        let out = evaluator
            .run(&ChoiceAssignment::default_choices(), &[Value::Int(5)])
            .unwrap();
        assert_eq!(out.value, Value::Int(10));
        for info in &cp.choices {
            for option in 1..info.options.len() {
                assert_agree(
                    &cp,
                    &ChoiceAssignment::from_pairs([(info.id, option)]),
                    &[Value::Int(5)],
                    ExecLimits::fast(),
                );
            }
        }
    }

    #[test]
    fn mutating_method_calls_write_back_through_choices() {
        // poly.pop(1) mutates the receiver; the write-back must hit the
        // same variable under choice evaluation.
        let student = parse_program("def f(poly):\n    poly.pop(0)\n    return poly\n").unwrap();
        let cp = apply_error_model(&student, Some("f"), &ErrorModel::new("empty")).unwrap();
        let evaluator = ChoiceEvaluator::new(&cp, ExecLimits::fast());
        let out = evaluator
            .run(
                &ChoiceAssignment::default_choices(),
                &[Value::int_list([1, 2, 3])],
            )
            .unwrap();
        assert_eq!(out.value, Value::int_list([2, 3]));
    }

    #[test]
    fn fuel_accounting_matches_the_concrete_interpreter_exactly() {
        // Probe every fuel budget around the program's exact cost: at each
        // budget the two evaluators must agree on whether fuel runs out.
        let cp = figure_2a_choices();
        let assignment = ChoiceAssignment::from_pairs(
            cp.choices
                .first()
                .map(|info| (info.id, 1))
                .into_iter()
                .collect::<Vec<_>>(),
        );
        let args = [Value::int_list([2, -3, 1, 4])];
        let concrete = cp.concretize(&assignment);
        for fuel in 1..200u64 {
            let limits = ExecLimits {
                fuel,
                max_recursion: 32,
            };
            let evaluator = ChoiceEvaluator::new(&cp, limits);
            let direct = evaluator.run(&assignment, &args);
            let materialised = run_function(&concrete, Some(&cp.func.name), &args, limits);
            let direct_exhausted = matches!(direct, Err(RuntimeError::FuelExhausted));
            let concrete_exhausted = matches!(materialised, Err(RuntimeError::FuelExhausted));
            assert_eq!(
                direct_exhausted, concrete_exhausted,
                "fuel {fuel}: divergent exhaustion ({direct:?} vs {materialised:?})"
            );
            if !direct_exhausted {
                assert_eq!(direct.unwrap(), materialised.unwrap(), "fuel {fuel}");
            }
        }
    }

    #[test]
    fn choice_id_out_of_range_clamps_like_concretize() {
        let cp = figure_2a_choices();
        // Selecting an absurd option index clamps to the last option, the
        // same as `concretize`.
        if let Some(info) = cp.choices.first() {
            let assignment = ChoiceAssignment::from_pairs([(info.id, 99)]);
            assert_agree(
                &cp,
                &assignment,
                &[Value::int_list([1, 2])],
                ExecLimits::fast(),
            );
        }
        // Selecting an unknown choice id is ignored by both paths.
        let assignment = ChoiceAssignment::from_pairs([(ChoiceId(9999), 1)]);
        assert_agree(
            &cp,
            &assignment,
            &[Value::int_list([1, 2])],
            ExecLimits::fast(),
        );
    }
}
