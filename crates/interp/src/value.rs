//! Runtime values — the Rust analogue of the paper's `MultiType` struct.
//!
//! The paper models Python's dynamic typing in the statically-typed SKETCH
//! language with a `MultiType` struct carrying a type flag and one field per
//! possible payload (paper Figure 5).  In Rust the idiomatic encoding of the
//! same idea is an enum.

use std::cmp::Ordering;
use std::fmt;

/// A dynamically-typed MPY runtime value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// Integer (`flag == INTEGER` in the paper's MultiType).
    Int(i64),
    /// Boolean (`flag == BOOL`).
    Bool(bool),
    /// String (`flag == STRING`).
    Str(String),
    /// List (`flag == LIST`).
    List(Vec<Value>),
    /// Tuple (`flag == TUPLE`).
    Tuple(Vec<Value>),
    /// Dictionary (`flag == DICTIONARY`); represented as an association list
    /// in insertion order, which is all the benchmarks need.
    Dict(Vec<(Value, Value)>),
    /// The `None` value.
    None,
}

impl Value {
    /// Python truthiness: `0`, `False`, `''`, `[]`, `()`, `{}` and `None` are
    /// falsy, everything else is truthy.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Int(v) => *v != 0,
            Value::Bool(b) => *b,
            Value::Str(s) => !s.is_empty(),
            Value::List(items) | Value::Tuple(items) => !items.is_empty(),
            Value::Dict(items) => !items.is_empty(),
            Value::None => false,
        }
    }

    /// The value's type name as Python would report it (`int`, `list`, ...).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Bool(_) => "bool",
            Value::Str(_) => "str",
            Value::List(_) => "list",
            Value::Tuple(_) => "tuple",
            Value::Dict(_) => "dict",
            Value::None => "NoneType",
        }
    }

    /// Returns the integer content, treating booleans as `0`/`1` the way
    /// Python arithmetic does.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// Python equality: booleans compare equal to the corresponding integers,
    /// sequences compare element-wise, everything else is structural.
    pub fn py_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Int(_) | Value::Bool(_), Value::Int(_) | Value::Bool(_)) => {
                self.as_int() == other.as_int()
            }
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::List(a), Value::List(b)) | (Value::Tuple(a), Value::Tuple(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.py_eq(y))
            }
            (Value::Dict(a), Value::Dict(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .all(|(k, v)| b.iter().any(|(k2, v2)| k.py_eq(k2) && v.py_eq(v2)))
            }
            (Value::None, Value::None) => true,
            _ => false,
        }
    }

    /// Python ordering for values of comparable types (ints/bools,
    /// strings, and sequences element-wise).  Returns `None` when the two
    /// types are not ordered against each other in MPY.
    pub fn py_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(_) | Value::Bool(_), Value::Int(_) | Value::Bool(_)) => {
                Some(self.as_int()?.cmp(&other.as_int()?))
            }
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::List(a), Value::List(b)) | (Value::Tuple(a), Value::Tuple(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    match x.py_cmp(y)? {
                        Ordering::Equal => continue,
                        non_eq => return Some(non_eq),
                    }
                }
                Some(a.len().cmp(&b.len()))
            }
            _ => None,
        }
    }

    /// Renders the value the way Python's `repr` would (single-quoted
    /// strings, `True`/`False`, `None`).
    pub fn repr(&self) -> String {
        let mut out = String::new();
        self.repr_into(&mut out);
        out
    }

    /// Appends the `repr` rendering to `out` without allocating
    /// intermediate strings per element.
    pub fn repr_into(&self, out: &mut String) {
        use std::fmt::Write;
        match self {
            Value::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Bool(true) => out.push_str("True"),
            Value::Bool(false) => out.push_str("False"),
            Value::Str(s) => {
                out.push('\'');
                out.push_str(s);
                out.push('\'');
            }
            Value::List(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.repr_into(out);
                }
                out.push(']');
            }
            Value::Tuple(items) => {
                out.push('(');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.repr_into(out);
                }
                if items.len() == 1 {
                    out.push(',');
                }
                out.push(')');
            }
            Value::Dict(items) => {
                out.push('{');
                for (i, (k, v)) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    k.repr_into(out);
                    out.push_str(": ");
                    v.repr_into(out);
                }
                out.push('}');
            }
            Value::None => out.push_str("None"),
        }
    }

    /// Renders the value the way Python's `str` would (strings unquoted).
    pub fn display_str(&self) -> String {
        match self {
            Value::Str(s) => s.clone(),
            other => other.repr(),
        }
    }

    /// Appends the `str` rendering to `out` — the allocation-free form of
    /// [`Value::display_str`] used by the bytecode VM's print path.
    pub fn display_into(&self, out: &mut String) {
        match self {
            Value::Str(s) => out.push_str(s),
            other => other.repr_into(out),
        }
    }

    /// Builds a list-of-ints value, the most common benchmark input.
    pub fn int_list(items: impl IntoIterator<Item = i64>) -> Value {
        Value::List(items.into_iter().map(Value::Int).collect())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display_str())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<Vec<i64>> for Value {
    fn from(v: Vec<i64>) -> Value {
        Value::int_list(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness_matches_python() {
        assert!(!Value::Int(0).is_truthy());
        assert!(Value::Int(-1).is_truthy());
        assert!(!Value::Str(String::new()).is_truthy());
        assert!(!Value::List(vec![]).is_truthy());
        assert!(Value::List(vec![Value::Int(0)]).is_truthy());
        assert!(!Value::None.is_truthy());
    }

    #[test]
    fn bool_and_int_compare_equal() {
        assert!(Value::Bool(true).py_eq(&Value::Int(1)));
        assert!(Value::Bool(false).py_eq(&Value::Int(0)));
        assert!(!Value::Bool(true).py_eq(&Value::Int(2)));
    }

    #[test]
    fn lists_compare_elementwise_and_lexicographically() {
        let a = Value::int_list([1, 2]);
        let b = Value::int_list([1, 2]);
        let c = Value::int_list([1, 3]);
        assert!(a.py_eq(&b));
        assert!(!a.py_eq(&c));
        assert_eq!(a.py_cmp(&c), Some(Ordering::Less));
        assert_eq!(a.py_cmp(&Value::int_list([1])), Some(Ordering::Greater));
    }

    #[test]
    fn cross_type_comparison_is_undefined() {
        assert_eq!(Value::Int(1).py_cmp(&Value::Str("a".into())), None);
        assert!(!Value::Int(1).py_eq(&Value::Str("1".into())));
    }

    #[test]
    fn repr_matches_python_conventions() {
        assert_eq!(Value::int_list([1, 2]).repr(), "[1, 2]");
        assert_eq!(Value::Tuple(vec![Value::Int(1)]).repr(), "(1,)");
        assert_eq!(Value::Str("ab".into()).repr(), "'ab'");
        assert_eq!(Value::Str("ab".into()).display_str(), "ab");
        assert_eq!(Value::Bool(true).repr(), "True");
        assert_eq!(Value::None.repr(), "None");
        assert_eq!(
            Value::Dict(vec![(Value::Int(1), Value::Str("a".into()))]).repr(),
            "{1: 'a'}"
        );
    }

    #[test]
    fn conversions_from_rust_types() {
        assert_eq!(Value::from(3), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(vec![1, 2]), Value::int_list([1, 2]));
    }
}
