//! The concurrent problem registry: assignment id → ready-to-grade state.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

use afg_core::{Autograder, ClusterIndex, FingerprintCache, GradeOutcome};
use afg_json::{Json, ToJson};

/// Everything the daemon holds for one registered assignment.
pub struct ProblemEntry {
    /// The registered identifier.
    pub id: String,
    /// The shared, read-only grading pipeline.
    pub grader: Autograder,
    /// The fingerprint cache (`None` when registered with `"cache": false`).
    pub cache: Option<FingerprintCache>,
    /// The skeleton cluster index for repair transfer (`None` when
    /// registered with `"clustering": false` or without a cache — the
    /// clustered path lives behind the cache lookup).
    pub clusters: Option<ClusterIndex>,
    /// Outcome counters over every submission this entry has graded.
    pub counters: OutcomeCounters,
}

/// Lock-free outcome counters (one instance per problem).  Alongside the
/// verdict buckets, solver-work totals (SAT conflicts, propagations, learnt
/// clauses, restarts) are accumulated from every `Feedback` outcome so
/// `/stats` consumers can track search effort per grade over time.
#[derive(Debug, Default)]
pub struct OutcomeCounters {
    graded: AtomicU64,
    syntax_errors: AtomicU64,
    correct: AtomicU64,
    fixed: AtomicU64,
    cannot_fix: AtomicU64,
    timeouts: AtomicU64,
    sat_conflicts: AtomicU64,
    sat_propagations: AtomicU64,
    sat_learnts: AtomicU64,
    restarts: AtomicU64,
    sweeps: AtomicU64,
    sweep_inputs: AtomicU64,
    sweep_cache_hits: AtomicU64,
    sweep_cache_nodes: AtomicU64,
}

impl OutcomeCounters {
    /// Records one graded submission.  `from_cache` suppresses the
    /// solver-work accumulation: a cache hit replays the original run's
    /// stats without running a search, and counting them again would
    /// inflate the reported effort by the hit rate.
    pub fn record(&self, outcome: &GradeOutcome, from_cache: bool) {
        self.graded.fetch_add(1, Ordering::Relaxed);
        let bucket = match outcome {
            GradeOutcome::SyntaxError(_) => &self.syntax_errors,
            GradeOutcome::Correct => &self.correct,
            GradeOutcome::Feedback(_) => &self.fixed,
            GradeOutcome::CannotFix => &self.cannot_fix,
            GradeOutcome::Timeout => &self.timeouts,
        };
        bucket.fetch_add(1, Ordering::Relaxed);
        if from_cache {
            return;
        }
        if let GradeOutcome::Feedback(feedback) = outcome {
            self.sat_conflicts
                .fetch_add(feedback.stats.sat_conflicts, Ordering::Relaxed);
            self.sat_propagations
                .fetch_add(feedback.stats.sat_propagations, Ordering::Relaxed);
            self.sat_learnts
                .fetch_add(feedback.stats.sat_learnts, Ordering::Relaxed);
            self.restarts
                .fetch_add(feedback.stats.restarts, Ordering::Relaxed);
            self.sweeps
                .fetch_add(feedback.stats.sweeps, Ordering::Relaxed);
            self.sweep_inputs
                .fetch_add(feedback.stats.sweep_inputs, Ordering::Relaxed);
            self.sweep_cache_hits
                .fetch_add(feedback.stats.sweep_cache_hits, Ordering::Relaxed);
            self.sweep_cache_nodes
                .fetch_max(feedback.stats.sweep_cache_nodes, Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> Json {
        Json::object([
            ("graded", self.graded.load(Ordering::Relaxed).to_json()),
            (
                "syntax_errors",
                self.syntax_errors.load(Ordering::Relaxed).to_json(),
            ),
            ("correct", self.correct.load(Ordering::Relaxed).to_json()),
            ("fixed", self.fixed.load(Ordering::Relaxed).to_json()),
            (
                "cannot_fix",
                self.cannot_fix.load(Ordering::Relaxed).to_json(),
            ),
            ("timeouts", self.timeouts.load(Ordering::Relaxed).to_json()),
        ])
    }

    fn solver_snapshot(&self) -> Json {
        Json::object([
            (
                "sat_conflicts",
                self.sat_conflicts.load(Ordering::Relaxed).to_json(),
            ),
            (
                "sat_propagations",
                self.sat_propagations.load(Ordering::Relaxed).to_json(),
            ),
            (
                "sat_learnts",
                self.sat_learnts.load(Ordering::Relaxed).to_json(),
            ),
            ("restarts", self.restarts.load(Ordering::Relaxed).to_json()),
        ])
    }

    /// Verification-sweep work accumulated from fresh (non-cache) grades;
    /// `mode` comes from the grader's configuration.  The verdict cache is
    /// the per-sweep trie memoising (program, input) verdicts: `inputs`
    /// counts every input considered (hits included), so misses — inputs
    /// that actually ran — are the difference, and `nodes` is the largest
    /// trie any single search grew.
    fn sweep_snapshot(&self, mode: &str) -> Json {
        let inputs = self.sweep_inputs.load(Ordering::Relaxed);
        let hits = self.sweep_cache_hits.load(Ordering::Relaxed);
        Json::object([
            ("mode", Json::str(mode)),
            ("sweeps", self.sweeps.load(Ordering::Relaxed).to_json()),
            ("sweep_inputs", inputs.to_json()),
            (
                "verdict_cache",
                Json::object([
                    ("hits", hits.to_json()),
                    ("misses", inputs.saturating_sub(hits).to_json()),
                    (
                        "max_nodes",
                        self.sweep_cache_nodes.load(Ordering::Relaxed).to_json(),
                    ),
                ]),
            ),
        ])
    }
}

impl ProblemEntry {
    /// The `/stats` rendering of this entry.
    pub fn stats_json(&self) -> Json {
        let config = self.grader.config();
        let escalation: Vec<Json> = config
            .escalation
            .tiers
            .iter()
            .map(|tier| {
                Json::object([
                    ("label", Json::str(&tier.label)),
                    (
                        "model_rules",
                        match tier.model_rules {
                            Some(rules) => rules.to_json(),
                            None => Json::Null,
                        },
                    ),
                    (
                        "backend",
                        Json::str(tier.backend.unwrap_or(config.backend).name()),
                    ),
                    ("max_cost", tier.synthesis.max_cost.to_json()),
                    ("max_candidates", tier.synthesis.max_candidates.to_json()),
                    ("time_budget_ms", tier.synthesis.time_budget.to_json()),
                ])
            })
            .collect();
        let mut pairs = vec![
            ("id".to_string(), Json::str(&self.id)),
            ("entry".to_string(), Json::str(self.grader.entry())),
            ("backend".to_string(), Json::str(config.backend.name())),
            ("escalation".to_string(), Json::Array(escalation)),
            ("outcomes".to_string(), self.counters.snapshot()),
            ("solver".to_string(), self.counters.solver_snapshot()),
            (
                "sweep".to_string(),
                self.counters
                    .sweep_snapshot(config.equivalence.sweep.name()),
            ),
        ];
        match &self.cache {
            Some(cache) => pairs.push(("cache".to_string(), cache.stats().to_json())),
            None => pairs.push(("cache".to_string(), Json::Null)),
        }
        match &self.clusters {
            Some(clusters) => pairs.push(("clusters".to_string(), clusters.stats().to_json())),
            None => pairs.push(("clusters".to_string(), Json::Null)),
        }
        Json::Object(pairs)
    }
}

/// The registry proper.  Problems are few and listed in `/stats`, so a
/// `BTreeMap` keeps the output deterministically ordered.
pub struct Registry {
    problems: RwLock<BTreeMap<String, Arc<ProblemEntry>>>,
    started: Instant,
}

impl Registry {
    /// An empty registry; `started` anchors the `/stats` uptime.
    pub fn new() -> Registry {
        Registry {
            problems: RwLock::new(BTreeMap::new()),
            started: Instant::now(),
        }
    }

    /// Registers (or replaces) a problem.
    pub fn insert(&self, entry: ProblemEntry) {
        self.problems
            .write()
            .expect("registry lock")
            .insert(entry.id.clone(), Arc::new(entry));
    }

    /// Looks up a problem by id.
    pub fn get(&self, id: &str) -> Option<Arc<ProblemEntry>> {
        self.problems
            .read()
            .expect("registry lock")
            .get(id)
            .cloned()
    }

    /// Number of registered problems.
    pub fn len(&self) -> usize {
        self.problems.read().expect("registry lock").len()
    }

    /// The `/stats` document.
    pub fn stats_json(&self) -> Json {
        let problems: Vec<Json> = self
            .problems
            .read()
            .expect("registry lock")
            .values()
            .map(|entry| entry.stats_json())
            .collect();
        Json::object([
            ("uptime_ms", self.started.elapsed().to_json()),
            ("problems", Json::Array(problems)),
        ])
    }
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afg_core::GraderConfig;
    use afg_eml::library;

    fn entry(id: &str, cache: bool) -> ProblemEntry {
        let problem = afg_corpus::problems::compute_deriv();
        ProblemEntry {
            id: id.to_string(),
            grader: Autograder::new(
                problem.reference,
                problem.entry,
                library::compute_deriv_model(),
                GraderConfig::fast(),
            )
            .unwrap(),
            cache: cache.then(FingerprintCache::new),
            clusters: cache.then(ClusterIndex::new),
            counters: OutcomeCounters::default(),
        }
    }

    #[test]
    fn registration_lookup_and_replacement() {
        let registry = Registry::new();
        assert_eq!(registry.len(), 0);
        assert!(registry.get("deriv").is_none());
        registry.insert(entry("deriv", true));
        assert_eq!(registry.len(), 1);
        let first = registry.get("deriv").unwrap();
        assert_eq!(first.id, "deriv");
        assert!(first.cache.is_some());
        // Re-registering replaces the entry.
        registry.insert(entry("deriv", false));
        assert_eq!(registry.len(), 1);
        assert!(registry.get("deriv").unwrap().cache.is_none());
    }

    #[test]
    fn stats_counts_outcomes_per_problem() {
        let registry = Registry::new();
        registry.insert(entry("deriv", true));
        let problem = registry.get("deriv").unwrap();
        problem.counters.record(&GradeOutcome::Correct, false);
        problem.counters.record(&GradeOutcome::Correct, false);
        problem.counters.record(&GradeOutcome::CannotFix, true);

        let stats = registry.stats_json();
        let problems = stats.get("problems").and_then(Json::as_array).unwrap();
        assert_eq!(problems.len(), 1);
        let outcomes = problems[0].get("outcomes").unwrap();
        assert_eq!(outcomes.get("graded").and_then(Json::as_i64), Some(3));
        assert_eq!(outcomes.get("correct").and_then(Json::as_i64), Some(2));
        assert_eq!(outcomes.get("cannot_fix").and_then(Json::as_i64), Some(1));
        assert!(problems[0].get("cache").unwrap().get("hits").is_some());
    }
}
